//! Contingency analysis data types (the paper's
//! `ContingencyAnalysisResult` schema family).

use gm_network::BranchKind;
use serde::{Deserialize, Serialize};

/// What was taken out of service.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Outage {
    /// Branch index into `Network::branches`.
    pub branch: usize,
    /// Whether the element is a line or a transformer.
    pub kind: BranchKind,
}

impl Outage {
    /// The paper's element label, e.g. "line 171" or "trafo 0" —
    /// element-kind-relative indices as PandaPower tables use.
    pub fn label(&self, kind_index: usize) -> String {
        match self.kind {
            BranchKind::Line => format!("line {kind_index}"),
            BranchKind::Transformer => format!("trafo {kind_index}"),
        }
    }
}

/// A single limit violation observed post-contingency.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Violation {
    /// Branch loaded above its thermal rating.
    ThermalOverload {
        /// Branch index.
        branch: usize,
        /// Loading (%).
        loading_pct: f64,
    },
    /// Bus voltage below the lower band.
    LowVoltage {
        /// External bus id.
        bus_id: u32,
        /// Magnitude (p.u.).
        vm_pu: f64,
    },
    /// Bus voltage above the upper band.
    HighVoltage {
        /// External bus id.
        bus_id: u32,
        /// Magnitude (p.u.).
        vm_pu: f64,
    },
}

/// Post-contingency outcome for one outage.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ContingencyOutcome {
    /// The simulated outage.
    pub outage: Outage,
    /// Element index within its kind (line number / trafo number).
    pub kind_index: usize,
    /// Whether the post-contingency power flow converged.
    pub converged: bool,
    /// Whether the outage splits the network (checked before solving).
    pub islands: bool,
    /// Buses stranded from the slack when `islands` (internal indices).
    pub stranded_buses: usize,
    /// All violations found.
    pub violations: Vec<Violation>,
    /// Largest branch loading (%) post-contingency.
    pub max_loading_pct: f64,
    /// Lowest bus voltage (p.u., with bus id).
    pub min_vm: (f64, u32),
    /// Estimated load shed requirement (MW): total load at stranded buses.
    pub load_shed_mw: f64,
    /// Whether a full AC power flow was solved for this outage (`false`
    /// when the DC screening mode classified it as secure without an AC
    /// solve).
    #[serde(default = "default_true")]
    pub ac_solved: bool,
}

fn default_true() -> bool {
    true
}

impl ContingencyOutcome {
    /// Count of thermal violations.
    pub fn n_thermal(&self) -> usize {
        self.violations
            .iter()
            .filter(|v| matches!(v, Violation::ThermalOverload { .. }))
            .count()
    }

    /// Count of voltage violations.
    pub fn n_voltage(&self) -> usize {
        self.violations
            .iter()
            .filter(|v| !matches!(v, Violation::ThermalOverload { .. }))
            .count()
    }
}

/// How the N-1 sweep trades speed against per-outage fidelity.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
#[serde(rename_all = "lowercase")]
pub enum SweepMode {
    /// Full AC power flow for every outage (the paper's reference sweep).
    Brute,
    /// Multi-fidelity cascade (the default): LODF screening ranks every
    /// outage by DC-estimated post-outage loading; only suspects — plus a
    /// safety band of top-ranked outages — get an AC verification, solved
    /// against the base-case factorization via Woodbury compensation with
    /// a full-Newton fallback. Screened-out outages carry
    /// `ac_solved = false` and the report counts them honestly.
    #[default]
    Cascade,
    /// Pure-DC screening ablation: outages below the cutoff are
    /// classified from the linear estimate alone, flagged outages get a
    /// full-Newton solve (no compensation). Kept as the
    /// speed-vs-completeness baseline between brute and cascade.
    Screened,
}

impl SweepMode {
    /// Canonical lowercase name, for tool JSON and narration. (The
    /// vendored serde shim ignores `rename_all`, so serialized reports
    /// carry the variant name verbatim — anything matching on the wire
    /// form must go through this accessor instead.)
    pub fn as_str(self) -> &'static str {
        match self {
            SweepMode::Brute => "brute",
            SweepMode::Cascade => "cascade",
            SweepMode::Screened => "screened",
        }
    }
}

pub(crate) fn default_mode_brute() -> SweepMode {
    SweepMode::Brute
}

/// How competing contingencies are ranked into a criticality order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum RankingStrategy {
    /// Weighted blend of thermal excess, voltage depth, load shed, and
    /// non-convergence/islanding penalties (the reference strategy).
    #[default]
    Composite,
    /// Rank purely by worst post-contingency loading — the "different
    /// analytical approach" the paper attributes to GPT-5-Mini's divergent
    /// Table 1 row.
    OverloadFirst,
    /// Rank purely by worst post-contingency voltage depression.
    VoltageFirst,
}

/// A ranked critical contingency with an auditable justification.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RankedContingency {
    /// Rank (0 = most critical).
    pub rank: usize,
    /// Outcome index into `ContingencyReport::outcomes`.
    pub outcome_index: usize,
    /// The paper-style label ("line 6", "trafo 0").
    pub label: String,
    /// Composite criticality score (higher = worse).
    pub score: f64,
    /// Human-readable justification grounded in the solver outputs
    /// (§3.2.3: "Outage A causes three overloads requiring 12 MW
    /// curtailment … therefore A ranks higher").
    pub justification: String,
}

/// Full N-1 study result (the paper's `ContingencyAnalysisResult`).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ContingencyReport {
    /// Case name.
    pub case_name: String,
    /// Number of contingencies analyzed.
    pub n_contingencies: usize,
    /// Lines analyzed.
    pub n_lines: usize,
    /// Transformers analyzed.
    pub n_trafos: usize,
    /// Per-outage outcomes.
    pub outcomes: Vec<ContingencyOutcome>,
    /// Total violation occurrences across all outages.
    pub total_violations: usize,
    /// Number of outages with at least one thermal overload.
    pub outages_with_overloads: usize,
    /// Number of outages with at least one voltage violation.
    pub outages_with_voltage_issues: usize,
    /// Largest post-contingency loading across the whole set (%), with the
    /// outcome index where it occurs.
    pub max_overload_pct: (f64, usize),
    /// Ranked critical contingencies (most critical first).
    pub ranking: Vec<RankedContingency>,
    /// Voltage band used (p.u.).
    pub voltage_band: (f64, f64),
    /// Wall time of the sweep (seconds).
    pub sweep_time_s: f64,
    /// Whether the sweep ran in parallel.
    pub parallel: bool,
    /// Sweep mode that produced the report. Reports serialized before the
    /// cascade existed were brute sweeps.
    #[serde(default = "default_mode_brute")]
    pub mode: SweepMode,
    /// Outages classified secure from the DC screen alone (no AC solve).
    #[serde(default)]
    pub screened_out: usize,
    /// Outages verified with an AC solve (suspects, safety band, and
    /// unscreenable outages). Brute sweeps verify everything.
    #[serde(default)]
    pub ac_verified: usize,
}

impl ContingencyReport {
    /// Top-k critical element labels (the paper's "Critical Lines" column).
    pub fn top_labels(&self, k: usize) -> Vec<String> {
        self.ranking
            .iter()
            .take(k)
            .map(|r| r.label.clone())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outage_labels() {
        let line = Outage {
            branch: 10,
            kind: BranchKind::Line,
        };
        assert_eq!(line.label(7), "line 7");
        let trafo = Outage {
            branch: 63,
            kind: BranchKind::Transformer,
        };
        assert_eq!(trafo.label(0), "trafo 0");
    }

    #[test]
    fn violation_counters() {
        let o = ContingencyOutcome {
            outage: Outage {
                branch: 0,
                kind: BranchKind::Line,
            },
            kind_index: 0,
            converged: true,
            islands: false,
            stranded_buses: 0,
            violations: vec![
                Violation::ThermalOverload {
                    branch: 3,
                    loading_pct: 112.0,
                },
                Violation::LowVoltage {
                    bus_id: 52,
                    vm_pu: 0.946,
                },
                Violation::LowVoltage {
                    bus_id: 75,
                    vm_pu: 0.943,
                },
            ],
            max_loading_pct: 112.0,
            min_vm: (0.943, 75),
            load_shed_mw: 0.0,
            ac_solved: true,
        };
        assert_eq!(o.n_thermal(), 1);
        assert_eq!(o.n_voltage(), 2);
    }
}
