//! Criticality ranking of contingency outcomes.
//!
//! The reference strategy mirrors §3.2.3 of the paper: rather than a
//! single metric, it blends clusters of thermal overloads, voltage
//! excursion depth, load-shed requirements, and solvability penalties into
//! one score, and emits an auditable justification for every ranked
//! element ("Outage A causes three overloads requiring 12 MW curtailment,
//! while Outage B causes one marginal overload — therefore A ranks
//! higher"). The alternative strategies model the per-LLM analytical
//! differences the paper observes in Table 1.

use crate::types::{ContingencyOutcome, RankedContingency, RankingStrategy, Violation};

/// Scores one outcome under a strategy (higher = more critical).
pub fn score(outcome: &ContingencyOutcome, strategy: RankingStrategy) -> f64 {
    if outcome.islands {
        // Islanding is categorically critical: ahead of any violation mix,
        // ordered by the load it strands.
        return 10_000.0 + outcome.load_shed_mw;
    }
    if !outcome.converged {
        // Voltage-collapse region: nearly as bad as islanding.
        return 9_000.0;
    }
    match strategy {
        RankingStrategy::Composite => {
            let thermal_excess: f64 = outcome
                .violations
                .iter()
                .filter_map(|v| match v {
                    Violation::ThermalOverload { loading_pct, .. } => Some(loading_pct - 100.0),
                    _ => None,
                })
                .sum();
            let voltage_depth: f64 = outcome
                .violations
                .iter()
                .filter_map(|v| match v {
                    Violation::LowVoltage { vm_pu, .. } => Some((0.95 - vm_pu) * 100.0),
                    Violation::HighVoltage { vm_pu, .. } => Some((vm_pu - 1.05) * 100.0),
                    _ => None,
                })
                .sum();
            // Multiple simultaneous violations outrank a single large one
            // (§3.2.2): each extra violation adds a fixed increment.
            let breadth = outcome.violations.len() as f64;
            2.0 * thermal_excess
                + 3.0 * voltage_depth
                + 1.5 * breadth
                + 0.05 * outcome.max_loading_pct
        }
        RankingStrategy::OverloadFirst => outcome.max_loading_pct,
        RankingStrategy::VoltageFirst => {
            if outcome.min_vm.0 > 0.0 {
                (1.0 - outcome.min_vm.0) * 1000.0
            } else {
                0.0
            }
        }
    }
}

/// Builds the justification narrative for a ranked outcome.
fn justify(outcome: &ContingencyOutcome) -> String {
    if outcome.islands {
        return format!(
            "outage islands {} buses, stranding {:.1} MW of load",
            outcome.stranded_buses, outcome.load_shed_mw
        );
    }
    if !outcome.converged {
        return "post-contingency power flow does not converge (voltage collapse risk)".to_string();
    }
    let nt = outcome.n_thermal();
    let nv = outcome.n_voltage();
    let mut parts = Vec::new();
    if nt > 0 {
        parts.push(format!(
            "{nt} thermal overload{} up to {:.0}%",
            if nt == 1 { "" } else { "s" },
            outcome.max_loading_pct
        ));
    }
    if nv > 0 {
        parts.push(format!(
            "{nv} voltage violation{} (worst bus {} at {:.3} p.u.)",
            if nv == 1 { "" } else { "s" },
            outcome.min_vm.1,
            outcome.min_vm.0
        ));
    }
    if parts.is_empty() {
        format!(
            "no violations; highest loading {:.0}%, lowest voltage {:.3} p.u.",
            outcome.max_loading_pct, outcome.min_vm.0
        )
    } else {
        parts.join("; ")
    }
}

/// Ranks all outcomes, most critical first. Ties break on the element
/// label ordering (branch index), keeping results deterministic.
pub fn rank(outcomes: &[ContingencyOutcome], strategy: RankingStrategy) -> Vec<RankedContingency> {
    let mut scored: Vec<(usize, f64)> = outcomes
        .iter()
        .enumerate()
        .map(|(i, o)| (i, score(o, strategy)))
        .collect();
    scored.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    scored
        .into_iter()
        .enumerate()
        .map(|(rank_pos, (idx, s))| {
            let o = &outcomes[idx];
            RankedContingency {
                rank: rank_pos,
                outcome_index: idx,
                label: o.outage.label(o.kind_index),
                score: s,
                justification: justify(o),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Outage;
    use gm_network::BranchKind;

    fn outcome(
        branch: usize,
        violations: Vec<Violation>,
        max_loading: f64,
        min_vm: f64,
    ) -> ContingencyOutcome {
        ContingencyOutcome {
            outage: Outage {
                branch,
                kind: BranchKind::Line,
            },
            kind_index: branch,
            converged: true,
            islands: false,
            stranded_buses: 0,
            violations,
            max_loading_pct: max_loading,
            min_vm: (min_vm, 1),
            load_shed_mw: 0.0,
            ac_solved: true,
        }
    }

    #[test]
    fn multiple_violations_outrank_single_marginal() {
        // The paper's §3.2.3 example, in miniature.
        let a = outcome(
            0,
            vec![
                Violation::ThermalOverload {
                    branch: 5,
                    loading_pct: 118.0,
                },
                Violation::ThermalOverload {
                    branch: 6,
                    loading_pct: 121.0,
                },
                Violation::LowVoltage {
                    bus_id: 9,
                    vm_pu: 0.928,
                },
            ],
            121.0,
            0.928,
        );
        let b = outcome(
            1,
            vec![Violation::ThermalOverload {
                branch: 7,
                loading_pct: 103.0,
            }],
            103.0,
            0.97,
        );
        let ranked = rank(&[b.clone(), a.clone()], RankingStrategy::Composite);
        assert_eq!(ranked[0].label, "line 0");
        assert!(ranked[0].score > ranked[1].score);
        assert!(ranked[0].justification.contains("2 thermal overloads"));
        assert!(ranked[0].justification.contains("0.928"));
    }

    #[test]
    fn islanding_dominates_everything() {
        let mut islander = outcome(2, vec![], 0.0, 0.0);
        islander.islands = true;
        islander.converged = false;
        islander.stranded_buses = 3;
        islander.load_shed_mw = 42.0;
        let stressed = outcome(
            0,
            vec![Violation::ThermalOverload {
                branch: 1,
                loading_pct: 180.0,
            }],
            180.0,
            0.96,
        );
        let ranked = rank(&[stressed, islander], RankingStrategy::Composite);
        assert_eq!(ranked[0].label, "line 2");
        assert!(ranked[0].justification.contains("islands 3 buses"));
        assert!(ranked[0].justification.contains("42.0 MW"));
    }

    #[test]
    fn overload_first_orders_by_loading() {
        let a = outcome(
            0,
            vec![Violation::LowVoltage {
                bus_id: 9,
                vm_pu: 0.93,
            }],
            95.0,
            0.93,
        ); // deep voltage dip
        let b = outcome(1, vec![], 99.0, 1.00); // higher loading, clean voltages
        let composite = rank(&[a.clone(), b.clone()], RankingStrategy::Composite);
        let overload = rank(&[a, b], RankingStrategy::OverloadFirst);
        assert_eq!(overload[0].label, "line 1");
        // The two strategies disagree on this pair.
        assert_ne!(composite[0].label, overload[0].label);
    }

    #[test]
    fn voltage_first_orders_by_depth() {
        let a = outcome(0, vec![], 90.0, 0.92);
        let b = outcome(1, vec![], 140.0, 1.0);
        let ranked = rank(&[a, b], RankingStrategy::VoltageFirst);
        assert_eq!(ranked[0].label, "line 0");
    }

    #[test]
    fn deterministic_tie_break() {
        let a = outcome(3, vec![], 50.0, 1.0);
        let b = outcome(7, vec![], 50.0, 1.0);
        let r1 = rank(&[a.clone(), b.clone()], RankingStrategy::Composite);
        let r2 = rank(&[a, b], RankingStrategy::Composite);
        assert_eq!(r1[0].label, r2[0].label);
        assert_eq!(r1[0].label, "line 3"); // lower index wins ties
    }

    #[test]
    fn non_convergence_ranks_below_islanding_above_violations() {
        let mut collapse = outcome(0, vec![], 0.0, 0.0);
        collapse.converged = false;
        let mut islander = outcome(1, vec![], 0.0, 0.0);
        islander.islands = true;
        islander.converged = false;
        let stressed = outcome(2, vec![], 150.0, 0.95);
        let ranked = rank(&[stressed, collapse, islander], RankingStrategy::Composite);
        assert_eq!(ranked[0].label, "line 1");
        assert_eq!(ranked[1].label, "line 0");
        assert_eq!(ranked[2].label, "line 2");
    }
}
