//! # gm-contingency
//!
//! N-1 contingency analysis for GridMind-RS — the engine behind the
//! paper's CA agent.
//!
//! - [`engine`] — the rayon-parallel T-1 sweep: outage enumeration,
//!   island screening, warm-started post-contingency power flows with a
//!   flat-start recovery path, and violation scanning.
//! - [`ranking`] — composite criticality scoring with auditable
//!   justifications (§3.2.3), plus the alternative ranking strategies
//!   used to model per-LLM analytical differences (Table 1).
//! - [`cache`] — the `(case + outage + diff hash)` result cache of §3.4.
//! - [`gen_outage`] — generator T-1 outages (the paper's §2 defines T-1
//!   over "system assets"; units are assets too).
//! - [`n2`] — the N-2 preview: LODF pair screening with compensated AC
//!   verification of the surviving pairs.
//!
//! ```
//! use gm_contingency::{run_n1, CaOptions};
//! use gm_network::{cases, CaseId};
//!
//! let net = cases::load(CaseId::Ieee14);
//! let report = run_n1(&net, &CaOptions::default(), None).unwrap();
//! assert_eq!(report.n_contingencies, 20); // 17 lines + 3 transformers
//! assert!(!report.ranking.is_empty());
//! ```
//! - [`types`] — `ContingencyOutcome` / `ContingencyReport`, mirroring
//!   the paper's `ContingencyAnalysisResult` schema.
// Solver crates are panic-free outside tests: every fallible path
// returns a typed error. Enforced by clippy here and by the regex
// pass of `gm-audit lint-src` (with its allowlist) in CI.
#![cfg_attr(
    not(test),
    deny(clippy::unwrap_used, clippy::expect_used, clippy::panic)
)]

pub mod cache;
pub mod engine;
pub mod gen_outage;
pub mod n2;
pub mod ranking;
pub mod types;

pub use cache::{CacheKey, ContingencyCache};
pub use engine::{evaluate_outage, run_n1, run_n1_cached, run_n1_screened, solve_base, CaOptions};
pub use gen_outage::{run_gen_n1, GenOutageOutcome};
pub use n2::{n_minus_2_preview, N2Preview, PairOutcome};
pub use ranking::{rank, score};
pub use types::{
    ContingencyOutcome, ContingencyReport, Outage, RankedContingency, RankingStrategy, SweepMode,
    Violation,
};
