//! The worker pool and its dispatch loop.
//!
//! ```text
//!            submit()                 pop()
//!  clients ───────────▶ BoundedQueue ──────▶ worker 0..N
//!              │         (session tokens)      │
//!              │                               │ take_next()
//!              ▼                               ▼
//!        SessionRegistry ────────────▶ SessionSlot { FIFO, GridMind }
//!                                              │
//!                                              ▼ solver calls
//!                                     shared SolverCache (LRU)
//! ```
//!
//! Admission control is request-count based: at most `queue_capacity`
//! requests may be admitted-but-unanswered; beyond that [`Server::submit`]
//! rejects with a synthesized `Busy` response. The global queue carries
//! *session tokens*, never raw requests — a session's token is queued at
//! most once, which serializes same-session requests while letting the
//! pool run distinct sessions fully in parallel. Each request's
//! deadline is checked at pickup — one that out-waited its budget is
//! answered `TimedOut` without touching the engine — and **re-checked
//! after the engine call**: a request whose budget expired while the
//! solver ran is answered `TimedOut` rather than handed a stale answer
//! (counted as `serve.deadline.expired_in_flight`).

use crate::queue::BoundedQueue;
use crate::registry::{QueuedRequest, SessionRegistry};
use gm_agents::{ModelProfile, ServeRequest, ServeResponse, ServeStatus};
use gm_faults::FaultInjector;
use gridmind_core::{GridMind, SessionContext, SolverCache, SolverCacheStats};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Server sizing knobs.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Worker threads draining the queue.
    pub workers: usize,
    /// Maximum admitted-but-unanswered requests before `Busy`.
    pub queue_capacity: usize,
    /// LRU capacity of the cross-session solver cache (entries).
    pub cache_capacity: usize,
    /// Model profile every session's agents simulate.
    pub profile: ModelProfile,
    /// Optional fault injector (chaos testing). Installed in every
    /// worker thread so solver-layer sites observe it, and consulted by
    /// the admission and deadline paths. `None` — the default — leaves
    /// the fault harness entirely out of the request path.
    pub faults: Option<FaultInjector>,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            workers: 4,
            queue_capacity: 1024,
            cache_capacity: 64,
            profile: ModelProfile::by_name("GPT-5").expect("built-in profile"),
            faults: None,
        }
    }
}

struct Shared {
    queue: BoundedQueue<String>,
    registry: SessionRegistry,
    cache: gridmind_core::SharedSolverCache,
    profile: ModelProfile,
    responses: Sender<ServeResponse>,
    /// Admitted requests not yet answered (admission control + drain).
    outstanding: AtomicUsize,
    accepting: AtomicBool,
    queue_capacity: usize,
    telemetry: gm_telemetry::Registry,
    faults: Option<FaultInjector>,
}

/// The running service.
pub struct Server {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Starts the worker pool. Responses to every admitted request (and
    /// nothing else) arrive on the returned channel.
    pub fn start(config: ServerConfig) -> (Server, Receiver<ServeResponse>) {
        let (tx, rx) = channel();
        let shared = Arc::new(Shared {
            queue: BoundedQueue::new(config.queue_capacity.max(1)),
            registry: SessionRegistry::new(),
            cache: SolverCache::new(config.cache_capacity),
            profile: config.profile,
            responses: tx,
            outstanding: AtomicUsize::new(0),
            accepting: AtomicBool::new(true),
            queue_capacity: config.queue_capacity.max(1),
            telemetry: gm_telemetry::Registry::new(),
            faults: config.faults,
        });
        // The server ring absorbs every session's ring at shutdown on
        // top of its own serve-path events; give it more headroom than
        // the per-session default.
        shared.telemetry.set_flight_capacity(1024);
        let workers = (0..config.workers.max(1))
            .map(|w| {
                let shared = shared.clone();
                std::thread::Builder::new()
                    .name(format!("gm-serve-{w}"))
                    .spawn(move || worker_loop(&shared, w))
                    .expect("spawn worker")
            })
            .collect();
        (Server { shared, workers }, rx)
    }

    /// Admits a request, or rejects it with a synthesized `Busy`
    /// response when the server is at capacity or shutting down. A
    /// rejected request is **not** reported on the response channel —
    /// the `Err` is the whole answer.
    pub fn submit(&self, req: ServeRequest) -> Result<(), ServeResponse> {
        let s = &self.shared;
        if !s.accepting.load(Ordering::SeqCst) {
            s.telemetry.add("serve.busy_rejections", 1);
            return Err(ServeResponse::busy(&req));
        }
        // Injected queue saturation: the admission path reports `Busy`
        // exactly as if the capacity check below had tripped.
        if let Some(inj) = &s.faults {
            if inj.fire("serve.queue") == Some(gm_faults::FaultKind::QueueSaturate) {
                s.telemetry.add("serve.busy_rejections", 1);
                return Err(ServeResponse::busy(&req));
            }
        }
        // Reserve an admission slot first; roll back on overflow.
        let prev = s.outstanding.fetch_add(1, Ordering::SeqCst);
        if prev >= s.queue_capacity {
            s.outstanding.fetch_sub(1, Ordering::SeqCst);
            s.telemetry.add("serve.busy_rejections", 1);
            return Err(ServeResponse::busy(&req));
        }
        s.telemetry.add("serve.requests", 1);
        s.telemetry.flight_record(
            "serve.enqueue",
            format!("session={} seq={}", req.session, req.seq),
        );
        let slot = s.registry.slot(&req.session);
        let needs_token = slot.enqueue(QueuedRequest {
            req,
            submitted: Instant::now(),
        });
        if needs_token {
            // Tokens in the queue are bounded by scheduled sessions ≤
            // admitted requests ≤ `queue_capacity`, so before close this
            // push cannot overflow. Should that invariant ever break,
            // spinning until a worker frees a slot (rather than dropping
            // the token) keeps the admitted request servable.
            loop {
                match s.queue.push_forced(slot.id.clone()) {
                    Ok(over) => {
                        if over {
                            s.telemetry.add("serve.queue.forced_over_capacity", 1);
                        }
                        break;
                    }
                    Err(crate::queue::QueueFull) => {
                        s.telemetry.add("serve.queue.forced_rejected", 1);
                        std::thread::yield_now();
                    }
                }
            }
        }
        Ok(())
    }

    /// Live statistics of the shared solver cache.
    pub fn cache_stats(&self) -> SolverCacheStats {
        self.shared.cache.stats()
    }

    /// Number of sessions ever served.
    pub fn session_count(&self) -> usize {
        self.shared.registry.len()
    }

    /// Stops accepting work, drains every admitted request, joins the
    /// pool, and returns the merged server telemetry (server-level
    /// counters + every session's trace + final cache totals).
    pub fn shutdown(self) -> gm_telemetry::Registry {
        let s = &self.shared;
        s.accepting.store(false, Ordering::SeqCst);
        while s.outstanding.load(Ordering::SeqCst) > 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
        s.queue.close();
        for h in self.workers {
            if h.join().is_err() {
                // A worker that died mid-drain is a real incident:
                // count it so the exported artifact shows the crash
                // instead of a silently shorter response stream.
                s.telemetry.add("serve.worker.panics", 1);
            }
        }
        // Fold every session's trace into the server registry so the
        // exported artifact carries solver metrics end to end. Slots are
        // visited in id order so the merged flight-recorder ring — and
        // with it a dump from a deterministic run — is reproducible.
        let mut slots = s.registry.all();
        slots.sort_by(|a, b| a.id.cmp(&b.id));
        for slot in slots {
            if let Some(gm) = slot.engine.lock().as_ref() {
                s.telemetry.merge_metrics(&gm.session.telemetry);
                s.telemetry.merge_flight(&gm.session.telemetry);
            }
        }
        let cs = s.cache.stats();
        s.telemetry.add("serve.cache.final_hits", cs.hits);
        s.telemetry.add("serve.cache.final_misses", cs.misses);
        s.telemetry.add("serve.cache.final_evictions", cs.evictions);
        s.telemetry.clone()
    }
}

fn worker_loop(shared: &Arc<Shared>, worker: usize) {
    // Server-level spans/counters recorded outside `GridMind::ask`
    // (which installs the session registry on top) land here. The fault
    // injector (if any) is installed per worker thread so solver-layer
    // sites inside the engine observe it.
    let _collector = shared.telemetry.install();
    let _faults = shared.faults.as_ref().map(FaultInjector::install);
    while let Some(session_id) = shared.queue.pop() {
        let slot = shared.registry.slot(&session_id);
        // Inner loop: normally one iteration per token, but when the
        // session still has work and its token cannot re-enter the
        // queue, the worker keeps serving the session inline instead of
        // stranding admitted requests (drain safety).
        loop {
            let Some(queued) = slot.take_next() else {
                // Defensive: a token without pending work retires itself
                // (or re-circulates if work raced in).
                if slot.finish_one() && !requeue(shared, &session_id) {
                    continue;
                }
                break;
            };
            serve_one(shared, worker, &slot, queued);
            if slot.finish_one() && !requeue(shared, &session_id) {
                continue;
            }
            break;
        }
    }
}

/// Re-circulates a session token. Returns `false` when the queue
/// refused it (capacity pressure before close) — the caller must then
/// serve the session inline rather than drop the token.
fn requeue(shared: &Shared, session_id: &str) -> bool {
    match shared.queue.push_forced(session_id.to_string()) {
        Ok(over) => {
            if over {
                shared.telemetry.add("serve.queue.forced_over_capacity", 1);
            }
            true
        }
        Err(crate::queue::QueueFull) => {
            shared.telemetry.add("serve.queue.forced_rejected", 1);
            false
        }
    }
}

fn serve_one(
    shared: &Shared,
    worker: usize,
    slot: &Arc<crate::registry::SessionSlot>,
    queued: QueuedRequest,
) {
    let span = gm_telemetry::span!("serve.request");
    // The latency-accounting kind splits every timing below into
    // per-kind quantile sketches — the raw material of the SLO gate.
    let kind = gridmind_core::classify_query_kind(&queued.req.query);
    let queue_wait_s = queued.submitted.elapsed().as_secs_f64();
    gm_telemetry::histogram_record("serve.queue_wait_s", queue_wait_s);
    shared
        .telemetry
        .record_quantile(&format!("serve.latency.{kind}.queue_wait_s"), queue_wait_s);

    // Check the engine *out* of the slot instead of holding the
    // slot mutex across the solve: `ask` can run Newton/IPM for
    // milliseconds, and a guard held that long blocks `shutdown`'s
    // telemetry sweep (and any future slot inspection) for the
    // whole solve. Exclusive ownership is already guaranteed by the
    // token protocol — a session's token is queued at most once, so
    // no other worker can reach this slot until we finish — and
    // `shutdown` joins the pool before sweeping, so the engine is
    // always back in the slot by then. The checkout happens before the
    // deadline check because serve-path flight events are recorded into
    // the *session's* ring: each session's FIFO is serialized by the
    // token protocol, so its ring keeps a reproducible order even while
    // the driver thread appends enqueue events to the server ring —
    // interleaving the two on one ring would make dumps racy.
    let mut gm = slot.engine.lock().take().unwrap_or_else(|| {
        GridMind::with_session(
            shared.profile.clone(),
            SessionContext::new_with_solver_cache(shared.cache.clone()),
        )
    });
    gm.session.telemetry.flight_record(
        "serve.pickup",
        format!(
            "session={} seq={} kind={kind} worker={worker}",
            queued.req.session, queued.req.seq
        ),
    );

    let expired = queued
        .req
        .deadline_ms
        .is_some_and(|ms| queue_wait_s * 1e3 > ms as f64)
        || gm_faults::inject("serve.deadline.pickup") == Some(gm_faults::FaultKind::DeadlineStorm);
    let mut service_s = 0.0;
    let response = if expired {
        shared.telemetry.add("serve.timeouts", 1);
        gm.session.telemetry.flight_record(
            "serve.deadline",
            format!(
                "at=pickup session={} seq={}",
                queued.req.session, queued.req.seq
            ),
        );
        ServeResponse::timed_out(&queued.req, queue_wait_s, worker)
    } else {
        let started = Instant::now();
        let cache_before = shared.cache.stats();
        let reply = gm.ask(&queued.req.query);
        let exec_s = started.elapsed().as_secs_f64();
        service_s = exec_s;
        // Split the service time by cache path. The stats delta is
        // attributed from this worker's perspective: a concurrent
        // worker's hit can land in the window, which at worst relabels
        // one sample — the per-kind totals stay exact.
        let cache_after = shared.cache.stats();
        shared
            .telemetry
            .record_quantile(&format!("serve.latency.{kind}.service_s"), exec_s);
        if cache_after.misses > cache_before.misses {
            shared
                .telemetry
                .record_quantile(&format!("serve.latency.{kind}.service_miss_s"), exec_s);
        } else if cache_after.hits > cache_before.hits {
            shared
                .telemetry
                .record_quantile(&format!("serve.latency.{kind}.service_hit_s"), exec_s);
        }
        // Deadlines used to be checked only at pickup: a request whose
        // budget ran out *while the engine was solving* was answered as
        // if on time. Re-check after the engine call and return an
        // honest `TimedOut` instead of a stale answer.
        let expired_in_flight = queued
            .req
            .deadline_ms
            .is_some_and(|ms| (queue_wait_s + exec_s) * 1e3 > ms as f64)
            || gm_faults::inject("serve.deadline.inflight")
                == Some(gm_faults::FaultKind::DeadlineStorm);
        if expired_in_flight {
            shared.telemetry.add("serve.timeouts", 1);
            shared.telemetry.add("serve.deadline.expired_in_flight", 1);
            gm.session.telemetry.flight_record(
                "serve.deadline",
                format!(
                    "at=inflight session={} seq={}",
                    queued.req.session, queued.req.seq
                ),
            );
            ServeResponse::timed_out(&queued.req, queue_wait_s, worker)
        } else {
            ServeResponse {
                session: queued.req.session.clone(),
                seq: queued.req.seq,
                status: ServeStatus::Done,
                text: reply.text,
                queue_wait_s,
                exec_s,
                worker: Some(worker),
            }
        }
    };
    *slot.engine.lock() = Some(gm);
    // End-to-end latency (queue wait + service; timed-out requests
    // contribute the time they actually burned, even though their
    // response reports `exec_s` 0) — the sketch the `slo.toml` targets
    // gate on. The names are spelled out per kind so the telemetry-xref
    // lint can cross-reference each against the committed SLO spec.
    shared.telemetry.record_quantile(
        match kind {
            "pf" => "serve.latency.pf.total_s",
            "contingency" => "serve.latency.contingency.total_s",
            "batch" => "serve.latency.batch.total_s",
            "mutate" => "serve.latency.mutate.total_s",
            "status" => "serve.latency.status.total_s",
            _ => "serve.latency.other.total_s",
        },
        queue_wait_s + service_s,
    );
    drop(span);

    // Answer, then release the admission slot; the caller reschedules
    // the session if it still has work. A send failure means the client
    // dropped the receiver — the answer is undeliverable, which the
    // artifact must show rather than pretend the request was served.
    if shared.responses.send(response).is_err() {
        shared.telemetry.add("serve.responses.dropped", 1);
    }
    shared.outstanding.fetch_sub(1, Ordering::SeqCst);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(session: &str, seq: u64, query: &str) -> ServeRequest {
        ServeRequest {
            session: session.into(),
            seq,
            query: query.into(),
            deadline_ms: None,
        }
    }

    fn small_config(workers: usize) -> ServerConfig {
        ServerConfig {
            workers,
            ..ServerConfig::default()
        }
    }

    #[test]
    fn serves_one_session_in_order() {
        let (server, rx) = Server::start(small_config(2));
        server.submit(req("s", 0, "solve case14")).unwrap();
        server
            .submit(req("s", 1, "what is the network status"))
            .unwrap();
        let a = rx.recv().unwrap();
        let b = rx.recv().unwrap();
        assert_eq!((a.seq, b.seq), (0, 1), "per-session FIFO");
        assert_eq!(a.status, ServeStatus::Done);
        assert!(a.text.contains("14-bus"));
        server.shutdown();
    }

    #[test]
    fn cross_session_parallelism_shares_the_cache() {
        let (server, rx) = Server::start(small_config(4));
        // Warm the cache with one session, then race three more: the
        // parallel wave must hit the warmed entry, not re-solve.
        server.submit(req("s0", 0, "solve case14")).unwrap();
        let warm = rx.recv().unwrap();
        for s in 1..4 {
            server
                .submit(req(&format!("s{s}"), 0, "solve case14"))
                .unwrap();
        }
        let texts: Vec<String> = (0..3).map(|_| rx.recv().unwrap().text).collect();
        for t in &texts {
            assert_eq!(t, &warm.text, "identical queries answer identically");
        }
        let stats = server.cache_stats();
        assert!(
            stats.hits >= 3,
            "warmed entry must serve the wave: {stats:?}"
        );
        assert_eq!(server.session_count(), 4);
        server.shutdown();
    }

    #[test]
    fn full_queue_rejects_with_busy() {
        let config = ServerConfig {
            workers: 1,
            queue_capacity: 1,
            ..ServerConfig::default()
        };
        let (server, rx) = Server::start(config);
        // Occupy the worker long enough to observe the bound.
        server.submit(req("a", 0, "solve case57")).unwrap();
        let mut rejected = 0;
        for i in 0..8 {
            if let Err(resp) = server.submit(req("b", i, "solve case14")) {
                assert_eq!(resp.status, ServeStatus::Busy);
                assert_eq!(resp.seq, i);
                rejected += 1;
            }
        }
        assert!(rejected > 0, "capacity 1 must shed load");
        let telemetry = {
            let mut answered = 0;
            while let Ok(r) = rx.recv_timeout(Duration::from_secs(60)) {
                answered += 1;
                assert_ne!(r.status, ServeStatus::Busy);
                if answered == 9 - rejected {
                    break;
                }
            }
            server.shutdown()
        };
        assert_eq!(telemetry.counter_value("serve.busy_rejections"), rejected);
    }

    #[test]
    fn expired_deadline_times_out_without_execution() {
        let (server, rx) = Server::start(small_config(1));
        // First request occupies the only worker; the second expires
        // while queued (0 ms budget).
        server.submit(req("a", 0, "solve case30")).unwrap();
        server
            .submit(ServeRequest {
                deadline_ms: Some(0),
                ..req("b", 1, "solve case30")
            })
            .unwrap();
        let mut statuses = std::collections::HashMap::new();
        for _ in 0..2 {
            let r = rx.recv().unwrap();
            statuses.insert(r.session.clone(), (r.status, r.text.clone()));
        }
        assert_eq!(statuses["a"].0, ServeStatus::Done);
        assert_eq!(statuses["b"].0, ServeStatus::TimedOut);
        assert!(statuses["b"].1.is_empty(), "timed-out work never ran");
        let telemetry = server.shutdown();
        assert_eq!(telemetry.counter_value("serve.timeouts"), 1);
    }

    #[test]
    fn injected_inflight_deadline_returns_timed_out_not_stale_answer() {
        // Script: the first in-flight deadline check storms. The work
        // runs to completion, but the response must be an honest
        // TimedOut — never the stale answer — and the regression
        // counter must record it.
        let inj = gm_faults::FaultInjector::scripted(vec![gm_faults::FaultRule::new(
            "serve.deadline.inflight",
            gm_faults::FaultKind::DeadlineStorm,
            0,
            1,
        )]);
        let config = ServerConfig {
            workers: 1,
            faults: Some(inj.clone()),
            ..ServerConfig::default()
        };
        let (server, rx) = Server::start(config);
        server.submit(req("s", 0, "solve case14")).unwrap();
        server.submit(req("s", 1, "solve case14")).unwrap();
        let a = rx.recv().unwrap();
        let b = rx.recv().unwrap();
        assert_eq!(a.status, ServeStatus::TimedOut);
        assert!(a.text.is_empty(), "stale answer must be withheld");
        assert_eq!(b.status, ServeStatus::Done, "window of 1: next is clean");
        assert!(!b.text.is_empty());
        let telemetry = server.shutdown();
        assert_eq!(
            telemetry.counter_value("serve.deadline.expired_in_flight"),
            1
        );
        assert_eq!(telemetry.counter_value("serve.timeouts"), 1);
        assert_eq!(inj.hits_at("serve.deadline.inflight"), 2);
    }

    #[test]
    fn injected_queue_saturation_rejects_at_admission() {
        let inj = gm_faults::FaultInjector::scripted(vec![gm_faults::FaultRule::new(
            "serve.queue",
            gm_faults::FaultKind::QueueSaturate,
            1,
            1,
        )]);
        let config = ServerConfig {
            workers: 2,
            faults: Some(inj),
            ..ServerConfig::default()
        };
        let (server, rx) = Server::start(config);
        server.submit(req("a", 0, "solve case14")).unwrap();
        let rejected = server
            .submit(req("b", 0, "solve case14"))
            .expect_err("scripted saturation on second admission");
        assert_eq!(rejected.status, ServeStatus::Busy);
        server.submit(req("c", 0, "solve case14")).unwrap();
        let answered: Vec<ServeResponse> = (0..2).map(|_| rx.recv().unwrap()).collect();
        assert!(answered.iter().all(|r| r.status == ServeStatus::Done));
        let telemetry = server.shutdown();
        assert_eq!(telemetry.counter_value("serve.busy_rejections"), 1);
        assert_eq!(telemetry.counter_value("serve.requests"), 2);
    }

    #[test]
    fn per_kind_latency_sketches_and_flight_events_are_recorded() {
        // One worker serializes the three requests, so the second
        // "solve case14" deterministically hits the cache the first one
        // warmed.
        let (server, rx) = Server::start(small_config(1));
        server.submit(req("s", 0, "solve case14")).unwrap();
        server
            .submit(req("s", 1, "what is the network status"))
            .unwrap();
        server.submit(req("t", 0, "solve case14")).unwrap();
        for _ in 0..3 {
            rx.recv().unwrap();
        }
        let telemetry = server.shutdown();
        let q = telemetry.quantiles_snapshot();
        assert_eq!(q["serve.latency.pf.total_s"].count, 2);
        assert_eq!(q["serve.latency.status.total_s"].count, 1);
        assert_eq!(q["serve.latency.pf.queue_wait_s"].count, 2);
        assert_eq!(q["serve.latency.pf.service_s"].count, 2);
        // First solve missed the shared cache, the second one hit it.
        assert!(q["serve.latency.pf.service_miss_s"].count >= 1);
        assert!(q["serve.latency.pf.service_hit_s"].count >= 1);
        // p50 ≤ p99 ≤ max on a real distribution.
        let s = &q["serve.latency.pf.total_s"];
        let (p50, p99) = (s.quantile(0.5).unwrap(), s.quantile(0.99).unwrap());
        assert!(p50 <= p99 && p99 <= s.max * (1.0 + s.relative_error_bound()));
        // Flight ring saw the request lifecycle and the merged cache
        // outcomes from the session registries.
        let kinds: std::collections::HashSet<String> = telemetry
            .flight_snapshot()
            .iter()
            .map(|e| e.kind.clone())
            .collect();
        assert!(kinds.contains("serve.enqueue"), "kinds: {kinds:?}");
        assert!(kinds.contains("serve.pickup"));
        assert!(kinds.contains("cache.miss"));
        assert!(kinds.contains("cache.hit"));
        assert!(telemetry.counter_value("telemetry.flight.recorded") > 0);
    }

    #[test]
    fn shutdown_drains_in_flight_work() {
        let (server, rx) = Server::start(small_config(2));
        for i in 0..6 {
            server.submit(req("s", i, "solve case14")).unwrap();
        }
        let telemetry = server.shutdown();
        let received: Vec<ServeResponse> = rx.try_iter().collect();
        assert_eq!(received.len(), 6, "drain answers everything admitted");
        assert_eq!(telemetry.counter_value("serve.requests"), 6);
    }
}
