//! `gm-serve` — run the GridMind session service's deterministic
//! workload soak.
//!
//! ```text
//! gm-serve --workload [--workers N] [--sessions M] [--queries K]
//!          [--queue-capacity Q] [--cache-capacity C]
//!          [--chaos SEED] [--chaos-rate PER_MILLE]
//!          [--out trace.json] [--check] [--flight-dump dump.json]
//! ```
//!
//! Prints a JSON summary (losses, duplicates, determinism verdict,
//! per-kind latency quantiles, cache statistics) to stdout. `--out`
//! writes the full server telemetry trace for `gm-trace`. With
//! `--check`, a failed invariant exits nonzero — the CI soak gate — and
//! the merged flight-recorder ring (the last structured events before
//! the violation: enqueues, pickups, deadlines, faults, recovery
//! descents, cache outcomes) is dumped as JSON to the `--flight-dump`
//! path (default `flight-dump.json`) so the violation is explainable
//! post mortem. `--chaos SEED` turns the soak into the chaos run: a
//! seeded fault injector fires at the solver and serve layers
//! (`--chaos-rate` per-mille per site hit, default 100) and the gate
//! switches to the fault-tolerance invariants (no losses, no
//! duplicates, no silent downgrades — see `workload::WorkloadReport`).

use gm_serve::workload::{self, WorkloadConfig};
use std::process::ExitCode;

struct Args {
    workload: bool,
    check: bool,
    out: Option<String>,
    flight_dump: String,
    chaos_seed: Option<u64>,
    chaos_per_mille: u32,
    config: WorkloadConfig,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        workload: false,
        check: false,
        out: None,
        flight_dump: "flight-dump.json".into(),
        chaos_seed: None,
        chaos_per_mille: 100,
        config: WorkloadConfig::default(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut num = |name: &str| -> Result<usize, String> {
            it.next()
                .ok_or_else(|| format!("{name} needs a value"))?
                .parse()
                .map_err(|e| format!("{name}: {e}"))
        };
        match arg.as_str() {
            "--workload" => args.workload = true,
            "--check" => args.check = true,
            "--workers" => args.config.workers = num("--workers")?,
            "--sessions" => args.config.sessions = num("--sessions")?,
            "--queries" => {
                let k = num("--queries")?;
                let script = workload::default_script();
                args.config.script = (0..k).map(|i| script[i % script.len()].clone()).collect();
            }
            "--queue-capacity" => args.config.queue_capacity = num("--queue-capacity")?,
            "--cache-capacity" => args.config.cache_capacity = num("--cache-capacity")?,
            "--chaos" => args.chaos_seed = Some(num("--chaos")? as u64),
            "--chaos-rate" => {
                let r = num("--chaos-rate")?;
                if r > 1000 {
                    return Err("--chaos-rate is per-mille (0..=1000)".into());
                }
                args.chaos_per_mille = r as u32;
            }
            "--out" => args.out = Some(it.next().ok_or("--out needs a path")?),
            "--flight-dump" => {
                args.flight_dump = it.next().ok_or("--flight-dump needs a path")?;
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let mut args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("gm-serve: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(seed) = args.chaos_seed {
        args.config.faults = Some(gm_faults::FaultInjector::chaos(seed, args.chaos_per_mille));
    }
    if !args.workload {
        eprintln!("gm-serve: only --workload mode is implemented; see --help header in source");
        return ExitCode::FAILURE;
    }

    let report = workload::run(&args.config);
    println!(
        "{}",
        serde_json::to_string_pretty(&report.to_json()).expect("report serializes")
    );

    if let Some(path) = &args.out {
        if let Err(e) = std::fs::write(
            path,
            serde_json::to_string_pretty(&report.telemetry).expect("trace serializes"),
        ) {
            eprintln!("gm-serve: writing {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("gm-serve: trace written to {path}");
    }

    if args.check && !report.passed() {
        eprintln!("gm-serve: workload invariants FAILED");
        // Dump the merged flight-recorder ring: the last structured
        // events before the violation, for postmortem triage.
        let flight = report
            .telemetry
            .get("flight")
            .cloned()
            .unwrap_or(serde_json::Value::Array(Vec::new()));
        let dump = serde_json::json!({ "flight": flight });
        match serde_json::to_string_pretty(&dump) {
            Ok(text) => match std::fs::write(&args.flight_dump, text) {
                Ok(()) => eprintln!("gm-serve: flight recorder dumped to {}", args.flight_dump),
                Err(e) => eprintln!("gm-serve: writing {}: {e}", args.flight_dump),
            },
            Err(e) => eprintln!("gm-serve: serializing flight dump: {e}"),
        }
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
