//! `gm-serve` — run the GridMind session service's deterministic
//! workload soak.
//!
//! ```text
//! gm-serve --workload [--workers N] [--sessions M] [--queries K]
//!          [--queue-capacity Q] [--cache-capacity C]
//!          [--out trace.json] [--check]
//! ```
//!
//! Prints a JSON summary (losses, duplicates, determinism verdict,
//! cache statistics) to stdout. `--out` writes the full server
//! telemetry trace for `gm-trace`. With `--check`, a failed invariant
//! exits nonzero — the CI soak gate.

use gm_serve::workload::{self, WorkloadConfig};
use std::process::ExitCode;

struct Args {
    workload: bool,
    check: bool,
    out: Option<String>,
    config: WorkloadConfig,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        workload: false,
        check: false,
        out: None,
        config: WorkloadConfig::default(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut num = |name: &str| -> Result<usize, String> {
            it.next()
                .ok_or_else(|| format!("{name} needs a value"))?
                .parse()
                .map_err(|e| format!("{name}: {e}"))
        };
        match arg.as_str() {
            "--workload" => args.workload = true,
            "--check" => args.check = true,
            "--workers" => args.config.workers = num("--workers")?,
            "--sessions" => args.config.sessions = num("--sessions")?,
            "--queries" => {
                let k = num("--queries")?;
                let script = workload::default_script();
                args.config.script = (0..k).map(|i| script[i % script.len()].clone()).collect();
            }
            "--queue-capacity" => args.config.queue_capacity = num("--queue-capacity")?,
            "--cache-capacity" => args.config.cache_capacity = num("--cache-capacity")?,
            "--out" => args.out = Some(it.next().ok_or("--out needs a path")?),
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("gm-serve: {e}");
            return ExitCode::FAILURE;
        }
    };
    if !args.workload {
        eprintln!("gm-serve: only --workload mode is implemented; see --help header in source");
        return ExitCode::FAILURE;
    }

    let report = workload::run(&args.config);
    println!(
        "{}",
        serde_json::to_string_pretty(&report.to_json()).expect("report serializes")
    );

    if let Some(path) = &args.out {
        if let Err(e) = std::fs::write(
            path,
            serde_json::to_string_pretty(&report.telemetry).expect("trace serializes"),
        ) {
            eprintln!("gm-serve: writing {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("gm-serve: trace written to {path}");
    }

    if args.check && !report.passed() {
        eprintln!("gm-serve: workload invariants FAILED");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
