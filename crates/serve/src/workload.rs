//! Deterministic workload driver: N sessions × M scripted queries.
//!
//! Every session submits the *same* script, so the soak invariants are
//! sharp: each of the N×M requests must be answered exactly once (no
//! losses, no duplicates), and for every script position the N answers
//! must be **byte-identical** across sessions — the solvers are
//! deterministic, narration carries no wall-clock text, and a cache hit
//! recalls exactly what a fresh solve would have produced. Busy
//! rejections are retried (with backoff) rather than dropped, so
//! backpressure shows up as `busy_retries` instead of lost work.

use crate::server::{Server, ServerConfig};
use crate::ServeStatus;
use gm_agents::{ModelProfile, ServeRequest, ServeResponse};
use std::collections::{BTreeMap, HashSet};
use std::time::{Duration, Instant};

/// Workload sizing.
#[derive(Clone, Debug)]
pub struct WorkloadConfig {
    /// Worker threads.
    pub workers: usize,
    /// Concurrent sessions, each running the full script.
    pub sessions: usize,
    /// Admission bound (requests admitted but unanswered).
    pub queue_capacity: usize,
    /// Solver-cache LRU capacity.
    pub cache_capacity: usize,
    /// The per-session query script.
    pub script: Vec<String>,
}

impl Default for WorkloadConfig {
    fn default() -> WorkloadConfig {
        WorkloadConfig {
            workers: 8,
            sessions: 32,
            queue_capacity: 64,
            cache_capacity: 64,
            script: default_script(),
        }
    }
}

/// The standard 4-query script: solve, sweep, mutate + re-solve, recall.
pub fn default_script() -> Vec<String> {
    vec![
        "solve case14".into(),
        "run the n-1 contingency analysis".into(),
        "set the load at bus 9 to 45 MW".into(),
        "what is the network status".into(),
    ]
}

/// What the soak run observed, with the gating verdicts precomputed.
#[derive(Clone, Debug)]
pub struct WorkloadReport {
    /// Requests the script implies (`sessions × script.len()`).
    pub expected: usize,
    /// Responses received.
    pub received: usize,
    /// Distinct `(session, seq)` pairs among them.
    pub distinct: usize,
    /// Responses that were not `Done`.
    pub failed: usize,
    /// `Busy` rejections that were retried into admission.
    pub busy_retries: u64,
    /// Script positions whose answers differed across sessions.
    pub divergent_positions: Vec<u64>,
    /// Final solver-cache statistics.
    pub cache: gridmind_core::SolverCacheStats,
    /// Sessions observed by the server.
    pub sessions_served: usize,
    /// Wall-clock duration of the run.
    pub wall_s: f64,
    /// Full server telemetry export (trace artifact).
    pub telemetry: serde_json::Value,
}

impl WorkloadReport {
    /// True when every soak invariant held: nothing lost, nothing
    /// duplicated, nothing failed, byte-identical answers per script
    /// position, and the shared cache actually hit.
    pub fn passed(&self) -> bool {
        self.received == self.expected
            && self.distinct == self.expected
            && self.failed == 0
            && self.divergent_positions.is_empty()
            && self.cache.hits > 0
    }

    /// JSON summary (the `gm-serve` binary's stdout contract).
    pub fn to_json(&self) -> serde_json::Value {
        serde_json::json!({
            "expected": self.expected,
            "received": self.received,
            "distinct": self.distinct,
            "failed": self.failed,
            "busy_retries": self.busy_retries,
            "divergent_positions": self.divergent_positions,
            "cache": {
                "hits": self.cache.hits,
                "misses": self.cache.misses,
                "evictions": self.cache.evictions,
                "inserts": self.cache.inserts,
            },
            "sessions_served": self.sessions_served,
            "wall_s": self.wall_s,
            "passed": self.passed(),
        })
    }
}

/// Runs the N×M soak against a fresh server and checks the invariants.
pub fn run(config: &WorkloadConfig) -> WorkloadReport {
    let t0 = Instant::now();
    let (server, rx) = Server::start(ServerConfig {
        workers: config.workers,
        queue_capacity: config.queue_capacity,
        cache_capacity: config.cache_capacity,
        profile: ModelProfile::by_name("GPT-5").expect("built-in profile"),
    });

    let expected = config.sessions * config.script.len();
    let mut busy_retries: u64 = 0;
    // Interleave submissions round-robin over sessions so the queue sees
    // genuine cross-session contention, not one session at a time.
    for (qi, query) in config.script.iter().enumerate() {
        for s in 0..config.sessions {
            let mut req = ServeRequest {
                session: format!("session-{s:03}"),
                seq: qi as u64,
                query: query.clone(),
                deadline_ms: None,
            };
            loop {
                match server.submit(req) {
                    Ok(()) => break,
                    Err(rejected) => {
                        busy_retries += 1;
                        std::thread::sleep(Duration::from_millis(2));
                        req = ServeRequest {
                            session: rejected.session,
                            seq: rejected.seq,
                            query: query.clone(),
                            deadline_ms: None,
                        };
                    }
                }
            }
        }
    }

    let mut responses: Vec<ServeResponse> = Vec::with_capacity(expected);
    while responses.len() < expected {
        match rx.recv_timeout(Duration::from_secs(600)) {
            Ok(r) => responses.push(r),
            Err(_) => break, // lost responses surface as received < expected
        }
    }

    let cache = server.cache_stats();
    let sessions_served = server.session_count();
    let telemetry = server.shutdown().export();

    // Cross-session determinism: per script position, one canonical text.
    let mut by_position: BTreeMap<u64, HashSet<&str>> = BTreeMap::new();
    for r in responses.iter().filter(|r| r.status == ServeStatus::Done) {
        by_position
            .entry(r.seq)
            .or_default()
            .insert(r.text.as_str());
    }
    let divergent_positions: Vec<u64> = by_position
        .iter()
        .filter(|(_, texts)| texts.len() > 1)
        .map(|(seq, _)| *seq)
        .collect();
    let distinct = responses
        .iter()
        .map(|r| (r.session.as_str(), r.seq))
        .collect::<HashSet<_>>()
        .len();

    WorkloadReport {
        expected,
        received: responses.len(),
        distinct,
        failed: responses
            .iter()
            .filter(|r| r.status != ServeStatus::Done)
            .count(),
        busy_retries,
        divergent_positions,
        cache,
        sessions_served,
        wall_s: t0.elapsed().as_secs_f64(),
        telemetry,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_workload_is_deterministic_and_lossless() {
        let report = run(&WorkloadConfig {
            workers: 4,
            sessions: 6,
            queue_capacity: 8, // force some Busy retries too
            cache_capacity: 64,
            script: default_script(),
        });
        assert!(report.passed(), "workload failed: {}", report.to_json());
        assert_eq!(report.sessions_served, 6);
        assert!(
            report.cache.hits >= 5,
            "5 of 6 identical first queries should hit; stats: {:?}",
            report.cache
        );
    }
}
