//! Deterministic workload driver: N sessions × M scripted queries.
//!
//! Every session submits the *same* script, so the soak invariants are
//! sharp: each of the N×M requests must be answered exactly once (no
//! losses, no duplicates), and for every script position the N answers
//! must be **byte-identical** across sessions — the solvers are
//! deterministic, narration carries no wall-clock text, and a cache hit
//! recalls exactly what a fresh solve would have produced. Busy
//! rejections are retried with a bounded, deterministic backoff (the
//! retry budget and wait accounting run on a virtual clock — see
//! [`Backoff`]) rather than dropped, so backpressure shows up as
//! `busy_retries` instead of lost work.
//!
//! ## Chaos mode
//!
//! With a [`FaultInjector`] in [`WorkloadConfig::faults`] the same
//! driver becomes the chaos soak: faults fire at the solver and serve
//! layers, and the invariants adjust to what a fault-tolerant server
//! must still guarantee. Nothing may be lost or duplicated, no retry
//! budget may be exhausted, and degraded answers must be *visible*:
//! recovery-ladder activity (`recovery.*` counters) must surface as
//! caveated answer text (or an honest `TimedOut` when a deadline storm
//! withheld the answer), and a caveat may never appear without ladder
//! activity behind it. Cross-session byte-identity is **not** asserted
//! under chaos — an injected timeout drops a scripted mutation for one
//! session, legitimately forking its later answers.

use crate::server::{Server, ServerConfig};
use crate::ServeStatus;
use gm_agents::{ModelProfile, ServeRequest, ServeResponse};
use gm_faults::FaultInjector;
use std::collections::{BTreeMap, HashSet};
use std::time::{Duration, Instant};

/// Workload sizing.
#[derive(Clone, Debug)]
pub struct WorkloadConfig {
    /// Worker threads.
    pub workers: usize,
    /// Concurrent sessions, each running the full script.
    pub sessions: usize,
    /// Admission bound (requests admitted but unanswered).
    pub queue_capacity: usize,
    /// Solver-cache LRU capacity.
    pub cache_capacity: usize,
    /// The per-session query script.
    pub script: Vec<String>,
    /// Fault injector for chaos soaks; `None` runs the clean soak with
    /// the strict byte-identity invariants.
    pub faults: Option<FaultInjector>,
}

impl Default for WorkloadConfig {
    fn default() -> WorkloadConfig {
        WorkloadConfig {
            workers: 8,
            sessions: 32,
            queue_capacity: 64,
            cache_capacity: 64,
            script: default_script(),
            faults: None,
        }
    }
}

/// The standard 5-query script: solve, N-1 sweep, batched load study,
/// mutate + re-solve, recall. One query per latency-accounting kind
/// (see `gridmind_core::classify_query_kind`) except `other`.
pub fn default_script() -> Vec<String> {
    vec![
        "solve case14".into(),
        "run the n-1 contingency analysis".into(),
        "sweep the load from 95% to 105% in 5 steps".into(),
        "set the load at bus 9 to 45 MW".into(),
        "what is the network status".into(),
    ]
}

/// Bounded deterministic retry schedule for `Busy` rejections.
///
/// The schedule is virtual-clock based: each retry advances a virtual
/// wait by `2^min(attempt,5)` ms (1, 2, 4, …, 32, 32, …), and the retry
/// *budget* is a fixed attempt count — never a wall-clock deadline — so
/// two runs of the same workload make identical retry decisions no
/// matter how slow the machine is. The physical sleep per step is
/// capped low; it only yields the CPU to the workers, it does not
/// gate correctness.
struct Backoff {
    attempts: u32,
    virtual_ms: u64,
}

impl Backoff {
    const MAX_ATTEMPTS: u32 = 40;
    const REAL_SLEEP_CAP_MS: u64 = 8;

    fn new() -> Backoff {
        Backoff {
            attempts: 0,
            virtual_ms: 0,
        }
    }

    /// The next physical sleep, or `None` when the budget is exhausted.
    fn next(&mut self) -> Option<Duration> {
        if self.attempts >= Backoff::MAX_ATTEMPTS {
            return None;
        }
        let step_ms = 1u64 << self.attempts.min(5);
        self.attempts += 1;
        self.virtual_ms += step_ms;
        Some(Duration::from_millis(
            step_ms.min(Backoff::REAL_SLEEP_CAP_MS),
        ))
    }
}

/// What the soak run observed, with the gating verdicts precomputed.
#[derive(Clone, Debug)]
pub struct WorkloadReport {
    /// Requests the script implies (`sessions × script.len()`).
    pub expected: usize,
    /// Responses received.
    pub received: usize,
    /// Distinct `(session, seq)` pairs among them.
    pub distinct: usize,
    /// Responses that were not `Done`.
    pub failed: usize,
    /// `Busy` rejections that were retried into admission.
    pub busy_retries: u64,
    /// Requests abandoned after the bounded retry budget ran dry.
    pub exhausted_retries: usize,
    /// Total virtual backoff wait accumulated across all retries (ms).
    pub backoff_virtual_ms: u64,
    /// `Done` answers carrying the degraded-result caveat.
    pub degraded: usize,
    /// Sum of all `recovery.*` counters (ladder activity).
    pub recovery_total: u64,
    /// `serve.timeouts` counter (pickup + in-flight deadline misses).
    pub timeouts: u64,
    /// Script positions whose answers differed across sessions.
    pub divergent_positions: Vec<u64>,
    /// Final solver-cache statistics.
    pub cache: gridmind_core::SolverCacheStats,
    /// Sessions observed by the server.
    pub sessions_served: usize,
    /// Whether a fault injector was active for this run.
    pub chaos: bool,
    /// Wall-clock duration of the run.
    pub wall_s: f64,
    /// Full server telemetry export (trace artifact).
    pub telemetry: serde_json::Value,
}

impl WorkloadReport {
    /// True when every soak invariant held.
    ///
    /// Clean runs: nothing lost, duplicated, or failed; no retry budget
    /// exhausted; byte-identical answers per script position; the
    /// shared cache actually hit; and zero recovery/caveat activity —
    /// with no faults injected the ladder must never engage.
    ///
    /// Chaos runs: nothing lost, duplicated, or abandoned, and the
    /// degraded-answer contract holds — caveats appear iff the recovery
    /// ladder ran (allowing for answers withheld by injected deadline
    /// storms), and never without it.
    pub fn passed(&self) -> bool {
        let lossless = self.received == self.expected
            && self.distinct == self.expected
            && self.exhausted_retries == 0;
        if self.chaos {
            // A caveat with no ladder activity behind it is a lie …
            let no_phantom_caveats = self.degraded == 0 || self.recovery_total > 0;
            // … and ladder activity must be visible: as a caveated
            // answer, unless every degraded answer was withheld by a
            // deadline storm (then `TimedOut` is the honest surface).
            let no_silent_downgrades =
                self.recovery_total == 0 || self.degraded > 0 || self.timeouts > 0;
            lossless && no_phantom_caveats && no_silent_downgrades
        } else {
            lossless
                && self.failed == 0
                && self.divergent_positions.is_empty()
                && self.cache.hits > 0
                && self.degraded == 0
                && self.recovery_total == 0
        }
    }

    /// Per-query-kind latency summary extracted from the trace's
    /// `serve.latency.<kind>.total_s` quantile sketches: kind →
    /// `{count, p50_s, p99_s, max_s}`. Empty when the trace carries no
    /// latency sketches (it always should).
    pub fn latency_summary(&self) -> serde_json::Value {
        let Some(snap) = gm_telemetry::find_snapshot(&self.telemetry) else {
            return serde_json::json!({});
        };
        let mut kinds = serde_json::Map::new();
        for (name, s) in &snap.quantiles {
            let Some(kind) = name
                .strip_prefix("serve.latency.")
                .and_then(|r| r.strip_suffix(".total_s"))
            else {
                continue;
            };
            kinds.insert(
                kind.to_string(),
                serde_json::json!({
                    "count": s.count,
                    "p50_s": s.quantile(0.5).unwrap_or(0.0),
                    "p99_s": s.quantile(0.99).unwrap_or(0.0),
                    "max_s": s.max,
                }),
            );
        }
        serde_json::Value::Object(kinds)
    }

    /// JSON summary (the `gm-serve` binary's stdout contract).
    pub fn to_json(&self) -> serde_json::Value {
        serde_json::json!({
            "expected": self.expected,
            "received": self.received,
            "distinct": self.distinct,
            "failed": self.failed,
            "busy_retries": self.busy_retries,
            "exhausted_retries": self.exhausted_retries,
            "backoff_virtual_ms": self.backoff_virtual_ms,
            "degraded": self.degraded,
            "recovery_total": self.recovery_total,
            "timeouts": self.timeouts,
            "divergent_positions": self.divergent_positions,
            "cache": {
                "hits": self.cache.hits,
                "misses": self.cache.misses,
                "evictions": self.cache.evictions,
                "inserts": self.cache.inserts,
            },
            "sessions_served": self.sessions_served,
            "chaos": self.chaos,
            "wall_s": self.wall_s,
            "latency": self.latency_summary(),
            "passed": self.passed(),
        })
    }
}

/// Runs the N×M soak against a fresh server and checks the invariants.
pub fn run(config: &WorkloadConfig) -> WorkloadReport {
    let t0 = Instant::now();
    let chaos = config.faults.is_some();
    let (server, rx) = Server::start(ServerConfig {
        workers: config.workers,
        queue_capacity: config.queue_capacity,
        cache_capacity: config.cache_capacity,
        profile: ModelProfile::by_name("GPT-5").expect("built-in profile"),
        faults: config.faults.clone(),
    });

    let expected = config.sessions * config.script.len();
    let mut submitted = 0usize;
    let mut busy_retries: u64 = 0;
    let mut exhausted_retries = 0usize;
    let mut backoff_virtual_ms: u64 = 0;
    // Interleave submissions round-robin over sessions so the queue sees
    // genuine cross-session contention, not one session at a time.
    for (qi, query) in config.script.iter().enumerate() {
        for s in 0..config.sessions {
            let mut req = ServeRequest {
                session: format!("session-{s:03}"),
                seq: qi as u64,
                query: query.clone(),
                deadline_ms: None,
            };
            let mut backoff = Backoff::new();
            loop {
                match server.submit(req) {
                    Ok(()) => {
                        submitted += 1;
                        break;
                    }
                    Err(rejected) => {
                        let Some(wait) = backoff.next() else {
                            exhausted_retries += 1;
                            break;
                        };
                        busy_retries += 1;
                        std::thread::sleep(wait);
                        req = ServeRequest {
                            session: rejected.session,
                            seq: rejected.seq,
                            query: query.clone(),
                            deadline_ms: None,
                        };
                    }
                }
            }
            backoff_virtual_ms += backoff.virtual_ms;
        }
    }

    let mut responses: Vec<ServeResponse> = Vec::with_capacity(expected);
    while responses.len() < submitted {
        match rx.recv_timeout(Duration::from_secs(600)) {
            Ok(r) => responses.push(r),
            Err(_) => break, // lost responses surface as received < expected
        }
    }

    let cache = server.cache_stats();
    let sessions_served = server.session_count();
    let registry = server.shutdown();
    let recovery_total = registry.sum_prefix("recovery.");
    let timeouts = registry.counter_value("serve.timeouts");
    let telemetry = registry.export();

    // Cross-session determinism: per script position, one canonical text.
    let mut by_position: BTreeMap<u64, HashSet<&str>> = BTreeMap::new();
    for r in responses.iter().filter(|r| r.status == ServeStatus::Done) {
        by_position
            .entry(r.seq)
            .or_default()
            .insert(r.text.as_str());
    }
    let divergent_positions: Vec<u64> = by_position
        .iter()
        .filter(|(_, texts)| texts.len() > 1)
        .map(|(seq, _)| *seq)
        .collect();
    let distinct = responses
        .iter()
        .map(|r| (r.session.as_str(), r.seq))
        .collect::<HashSet<_>>()
        .len();
    let degraded = responses
        .iter()
        .filter(|r| r.status == ServeStatus::Done && r.text.contains(gridmind_core::CAVEAT_PREFIX))
        .count();

    WorkloadReport {
        expected,
        received: responses.len(),
        distinct,
        failed: responses
            .iter()
            .filter(|r| r.status != ServeStatus::Done)
            .count(),
        busy_retries,
        exhausted_retries,
        backoff_virtual_ms,
        degraded,
        recovery_total,
        timeouts,
        divergent_positions,
        cache,
        sessions_served,
        chaos,
        wall_s: t0.elapsed().as_secs_f64(),
        telemetry,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gm_faults::{FaultKind, FaultRule};

    #[test]
    fn small_workload_is_deterministic_and_lossless() {
        let report = run(&WorkloadConfig {
            workers: 4,
            sessions: 6,
            queue_capacity: 8, // force some Busy retries too
            cache_capacity: 64,
            script: default_script(),
            faults: None,
        });
        assert!(report.passed(), "workload failed: {}", report.to_json());
        assert_eq!(report.sessions_served, 6);
        // Every script query lands in its own latency bucket, once per
        // session.
        let latency = report.latency_summary();
        for kind in ["pf", "contingency", "batch", "mutate", "status"] {
            assert_eq!(
                latency[kind]["count"], 6u64,
                "latency summary for {kind}: {latency}"
            );
        }
        assert!(
            report.cache.hits >= 5,
            "5 of 6 identical first queries should hit; stats: {:?}",
            report.cache
        );
    }

    #[test]
    fn scripted_faults_surface_as_caveats_and_retries_not_losses() {
        // Script: the very first base power flow diverges (one session's
        // first answer must carry the recovery caveat), and one admission
        // hits a synthetic queue saturation (must be retried, not lost).
        let inj = FaultInjector::scripted(vec![
            FaultRule::new("pf.base", FaultKind::NewtonDiverge, 0, 1),
            FaultRule::new("serve.queue", FaultKind::QueueSaturate, 2, 1),
        ]);
        let report = run(&WorkloadConfig {
            workers: 2,
            sessions: 4,
            queue_capacity: 16,
            cache_capacity: 64,
            script: default_script(),
            faults: Some(inj),
        });
        assert!(report.chaos);
        assert!(
            report.passed(),
            "chaos workload failed: {}",
            report.to_json()
        );
        assert!(report.degraded >= 1, "caveat missing: {}", report.to_json());
        assert!(report.recovery_total >= 1);
        assert!(report.busy_retries >= 1, "saturation must be retried");
        assert_eq!(report.exhausted_retries, 0);
    }

    #[test]
    fn seeded_chaos_soak_holds_the_invariants() {
        let report = run(&WorkloadConfig {
            workers: 4,
            sessions: 6,
            queue_capacity: 24,
            cache_capacity: 64,
            script: default_script(),
            faults: Some(FaultInjector::chaos(7, 150)),
        });
        assert!(report.passed(), "chaos soak failed: {}", report.to_json());
        assert_eq!(report.received, report.expected, "no lost responses");
    }
}
