//! Session registry: session id → per-session slot.
//!
//! Each slot owns (a) the session's private FIFO of pending requests
//! and (b) its lazily constructed [`GridMind`] engine. Per-session
//! serialization is enforced by *token scheduling*: a session's id is
//! in the server's global queue **at most once** (the `scheduled`
//! flag), so at most one worker ever holds a given slot, two requests
//! for the same session can never interleave, and distinct sessions run
//! fully in parallel across the worker pool.

use gm_agents::ServeRequest;
use gridmind_core::GridMind;
use parking_lot::{Mutex, RwLock};
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;
use std::time::Instant;

/// A request plus its admission timestamp (for queue-wait accounting
/// and deadline checks).
#[derive(Clone, Debug)]
pub struct QueuedRequest {
    /// The admitted request.
    pub req: ServeRequest,
    /// When [`crate::Server::submit`] accepted it.
    pub submitted: Instant,
}

struct SlotState {
    pending: VecDeque<QueuedRequest>,
    /// Whether this session's token is currently in the global queue or
    /// held by a worker.
    scheduled: bool,
}

/// One session's serialization point: pending FIFO + engine.
pub struct SessionSlot {
    /// The session id.
    pub id: String,
    state: Mutex<SlotState>,
    /// The session's conversational engine, built by the first worker
    /// to serve it. Uncontended in steady state — token scheduling
    /// already guarantees single ownership — the mutex exists for
    /// `Sync`.
    pub engine: Mutex<Option<GridMind>>,
}

impl SessionSlot {
    fn new(id: &str) -> Arc<SessionSlot> {
        Arc::new(SessionSlot {
            id: id.to_string(),
            state: Mutex::new(SlotState {
                pending: VecDeque::new(),
                scheduled: false,
            }),
            engine: Mutex::new(None),
        })
    }

    /// Appends a request to this session's FIFO. Returns `true` when
    /// the caller must enqueue the session's token (the slot was idle);
    /// `false` when a token is already circulating.
    pub fn enqueue(&self, qr: QueuedRequest) -> bool {
        let mut s = self.state.lock();
        s.pending.push_back(qr);
        if s.scheduled {
            false
        } else {
            s.scheduled = true;
            true
        }
    }

    /// Takes the oldest pending request (the worker holding the token).
    pub fn take_next(&self) -> Option<QueuedRequest> {
        self.state.lock().pending.pop_front()
    }

    /// Marks one request finished. Returns `true` when more work is
    /// pending (the worker must re-enqueue the token); otherwise clears
    /// the `scheduled` flag and returns `false`.
    pub fn finish_one(&self) -> bool {
        let mut s = self.state.lock();
        if s.pending.is_empty() {
            s.scheduled = false;
            false
        } else {
            true
        }
    }

    /// Removes the most recently queued request — the rollback path for
    /// [`crate::Server::submit`] when the freshly scheduled session's
    /// token cannot enter the global queue. Clears the `scheduled` flag
    /// when the FIFO empties so a later submit schedules a new token.
    pub fn retract_last(&self) -> Option<QueuedRequest> {
        let mut s = self.state.lock();
        let r = s.pending.pop_back();
        if s.pending.is_empty() {
            s.scheduled = false;
        }
        r
    }

    /// Number of requests waiting in this session's FIFO.
    pub fn backlog(&self) -> usize {
        self.state.lock().pending.len()
    }
}

/// The id → slot map.
#[derive(Default)]
pub struct SessionRegistry {
    slots: RwLock<HashMap<String, Arc<SessionSlot>>>,
}

impl SessionRegistry {
    /// Empty registry.
    pub fn new() -> SessionRegistry {
        SessionRegistry::default()
    }

    /// The slot for `id`, created on first reference.
    pub fn slot(&self, id: &str) -> Arc<SessionSlot> {
        if let Some(s) = self.slots.read().get(id) {
            return s.clone();
        }
        let mut w = self.slots.write();
        w.entry(id.to_string())
            .or_insert_with(|| SessionSlot::new(id))
            .clone()
    }

    /// All known slots (shutdown-time telemetry sweep).
    pub fn all(&self) -> Vec<Arc<SessionSlot>> {
        self.slots.read().values().cloned().collect()
    }

    /// Number of sessions ever referenced.
    pub fn len(&self) -> usize {
        self.slots.read().len()
    }

    /// True when no session has been referenced yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn qr(session: &str, seq: u64) -> QueuedRequest {
        QueuedRequest {
            req: ServeRequest {
                session: session.into(),
                seq,
                query: "q".into(),
                deadline_ms: None,
            },
            submitted: Instant::now(),
        }
    }

    #[test]
    fn slot_identity_is_stable() {
        let reg = SessionRegistry::new();
        let a1 = reg.slot("a");
        let a2 = reg.slot("a");
        assert!(Arc::ptr_eq(&a1, &a2));
        assert_eq!(reg.len(), 1);
        reg.slot("b");
        assert_eq!(reg.len(), 2);
    }

    #[test]
    fn token_scheduling_marks_exactly_one_token() {
        let reg = SessionRegistry::new();
        let slot = reg.slot("s");
        assert!(slot.enqueue(qr("s", 0)), "idle slot needs a token");
        assert!(!slot.enqueue(qr("s", 1)), "token already circulating");
        assert_eq!(slot.backlog(), 2);

        // Worker processes seq 0, more remains → keep the token.
        assert_eq!(slot.take_next().unwrap().req.seq, 0);
        assert!(slot.finish_one());
        // Worker processes seq 1, slot drains → token retired.
        assert_eq!(slot.take_next().unwrap().req.seq, 1);
        assert!(!slot.finish_one());
        // Next enqueue needs a fresh token again.
        assert!(slot.enqueue(qr("s", 2)));
    }
}
