//! # gm-serve
//!
//! Multi-threaded, queue-based session service for GridMind: many
//! concurrent conversational sessions, one machine, one shared solver
//! cache.
//!
//! Architecture (README "Serving" has the full diagram):
//!
//! - [`queue::BoundedQueue`] — the bounded dispatch queue. Admission
//!   overflow is surfaced to clients as a `Busy` rejection instead of
//!   unbounded buffering.
//! - [`registry::SessionRegistry`] — session id → [`registry::SessionSlot`],
//!   each slot holding the session's private request FIFO and its
//!   lazily built [`gridmind_core::GridMind`]. Token scheduling
//!   serializes same-session requests while distinct sessions run in
//!   parallel across the pool.
//! - [`server::Server`] — the fixed worker pool: per-request deadline
//!   handling, `serve.request` spans, `serve.queue_wait_s` histograms,
//!   and graceful drain on shutdown.
//! - the cross-session solver cache lives in
//!   [`gridmind_core::solver_cache`] (gm-core owns it so the tool layer
//!   can consult it); the server constructs and shares one instance
//!   across every session.
//! - [`workload`] — the deterministic N sessions × M queries soak
//!   driver behind `gm-serve --workload`.
//!
//! The request/response envelopes ([`ServeRequest`], [`ServeResponse`])
//! are defined in [`gm_agents::envelope`] so clients need not link the
//! server.

pub mod queue;
pub mod registry;
pub mod server;
pub mod workload;

pub use gm_agents::{ServeRequest, ServeResponse, ServeStatus};
pub use queue::{BoundedQueue, QueueFull};
pub use registry::{QueuedRequest, SessionRegistry, SessionSlot};
pub use server::{Server, ServerConfig};
pub use workload::{default_script, WorkloadConfig, WorkloadReport};
