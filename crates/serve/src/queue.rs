//! Bounded MPMC work queue with blocking consumers.
//!
//! The server's central dispatch structure: producers ([`crate::Server::submit`])
//! push session tokens, worker threads block in [`BoundedQueue::pop`]
//! until a token or shutdown arrives. Capacity overflow is reported to
//! the producer (`Err(QueueFull)`) — the server maps it to a `Busy`
//! rejection — while internal re-scheduling uses [`BoundedQueue::push_forced`],
//! whose only exemption is the **closed** flag, so a draining server can
//! still finish multi-request sessions. Before close, forced pushes obey
//! the capacity bound like everyone else: the old behavior of bypassing
//! both checks let a buggy or adversarial scheduling path grow the queue
//! without limit.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Push rejected: the queue is at capacity or closed to new work.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct QueueFull;

struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded multi-producer multi-consumer FIFO.
pub struct BoundedQueue<T> {
    inner: Mutex<Inner<T>>,
    ready: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// Empty queue holding at most `capacity` items (minimum 1).
    pub fn new(capacity: usize) -> BoundedQueue<T> {
        BoundedQueue {
            inner: Mutex::new(Inner {
                items: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Enqueues an item, failing when at capacity or closed.
    pub fn push(&self, item: T) -> Result<(), QueueFull> {
        let mut g = self.inner.lock().expect("queue lock");
        if g.closed || g.items.len() >= self.capacity {
            return Err(QueueFull);
        }
        g.items.push_back(item);
        drop(g);
        self.ready.notify_one();
        Ok(())
    }

    /// Enqueues on the internal re-scheduling path. Unlike [`push`],
    /// this succeeds on a **closed** queue — a draining server must
    /// still re-circulate session tokens so queued sessions finish —
    /// but the capacity bound holds until close: before the queue is
    /// closed an over-capacity forced push fails with `Err(QueueFull)`.
    /// `Ok(true)` flags a push that landed over capacity during drain
    /// (exported as `serve.queue.forced_over_capacity`).
    ///
    /// [`push`]: BoundedQueue::push
    pub fn push_forced(&self, item: T) -> Result<bool, QueueFull> {
        let mut g = self.inner.lock().expect("queue lock");
        let over = g.items.len() >= self.capacity;
        if over && !g.closed {
            return Err(QueueFull);
        }
        g.items.push_back(item);
        drop(g);
        self.ready.notify_one();
        Ok(over)
    }

    /// Blocks until an item is available (`Some`) or the queue is both
    /// closed and empty (`None`).
    pub fn pop(&self) -> Option<T> {
        let mut g = self.inner.lock().expect("queue lock");
        loop {
            if let Some(item) = g.items.pop_front() {
                return Some(item);
            }
            if g.closed {
                return None;
            }
            g = self.ready.wait(g).expect("queue wait");
        }
    }

    /// Closes the queue: new `push` calls fail, blocked consumers drain
    /// the remainder and then observe `None`.
    pub fn close(&self) {
        self.inner.lock().expect("queue lock").closed = true;
        self.ready.notify_all();
    }

    /// Current number of queued items.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("queue lock").items.len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_order_and_capacity_bound() {
        let q = BoundedQueue::new(2);
        q.push(1).unwrap();
        q.push(2).unwrap();
        assert_eq!(q.push(3), Err(QueueFull), "third push exceeds capacity");
        assert_eq!(q.pop(), Some(1));
        q.push(3).unwrap();
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(3));
    }

    #[test]
    fn close_drains_then_signals_none() {
        let q = BoundedQueue::new(4);
        q.push("a").unwrap();
        q.close();
        assert_eq!(q.push("b"), Err(QueueFull), "closed queue rejects pushes");
        assert_eq!(
            q.push_forced("forced"),
            Ok(false),
            "forced push bypasses only the closed flag"
        );
        assert_eq!(q.pop(), Some("a"));
        assert_eq!(q.pop(), Some("forced"));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn forced_push_respects_capacity_before_close() {
        // Regression: `push_forced` used to bypass the capacity bound
        // as well as the closed flag, so a scheduling bug could grow
        // the queue without limit on a live server. The drain-only
        // exemption keeps capacity enforced until `close()`.
        let q = BoundedQueue::new(2);
        assert_eq!(q.push_forced(1), Ok(false));
        assert_eq!(q.push_forced(2), Ok(false));
        assert_eq!(q.push_forced(3), Err(QueueFull), "at capacity, not closed");
        assert_eq!(q.len(), 2);
        q.close();
        assert_eq!(
            q.push_forced(3),
            Ok(true),
            "drain exemption: over-capacity push allowed and flagged"
        );
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(3));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn blocked_consumer_wakes_on_push() {
        let q = Arc::new(BoundedQueue::new(4));
        let q2 = q.clone();
        let h = std::thread::spawn(move || q2.pop());
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.push(42u32).unwrap();
        assert_eq!(h.join().unwrap(), Some(42));
    }

    #[test]
    fn blocked_consumer_wakes_on_close() {
        let q: Arc<BoundedQueue<u32>> = Arc::new(BoundedQueue::new(4));
        let q2 = q.clone();
        let h = std::thread::spawn(move || q2.pop());
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.close();
        assert_eq!(h.join().unwrap(), None);
    }
}
