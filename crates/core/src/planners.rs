//! Deterministic domain planners for the two GridMind agents.
//!
//! These implement [`gm_agents::Planner`]: the intent parsing, tool-call
//! planning, recovery, and narration the paper delegates to the remote
//! LLM. The plan shapes mirror the paper's numbered reasoning traces
//! ("1. (understand the case to be solved) -> reasoning … 4. (invoke
//! ACOPF solver) -> function tools …"), and every number in a narration is
//! read from a pending tool result — never invented.

use gm_agents::{
    classify, extract_entities, AnalysisStyle, ConversationView, IntentRule, ModelTurn, Planner,
    ToolCall, TurnAction,
};
use serde_json::{json, Value};

fn f(v: &Value, key: &str) -> f64 {
    v[key].as_f64().unwrap_or(f64::NAN)
}

/// Returns the error text of a pending result, if it is an error object.
fn error_of(result: &Value) -> Option<&str> {
    result.get("error").and_then(|e| e.as_str())
}

/// Appends the distinct `degraded_caveat` lines carried by this turn's
/// tool results to a narration. The recovery ladder
/// ([`crate::recovery`]) attaches these when an answer was produced by a
/// fallback solver; the contract is that they are surfaced verbatim —
/// a degraded answer is never narrated as a clean one. Scanning *all*
/// pending results (not just the narrated one) keeps the caveat alive
/// across chained calls, e.g. a degraded base case feeding an N-1 sweep.
fn with_caveats(view: &ConversationView, text: String) -> String {
    let mut out = text;
    let mut seen: Vec<&str> = Vec::new();
    for (_, result) in &view.pending_results {
        if let Some(c) = result.get("degraded_caveat").and_then(|v| v.as_str()) {
            if !seen.contains(&c) {
                seen.push(c);
                out.push_str("\n\n");
                out.push_str(c);
            }
        }
    }
    out
}

// ---------------------------------------------------------------------
// ACOPF agent planner
// ---------------------------------------------------------------------

/// Planner for the ACOPF agent (tools of Appendix B.3.1).
pub struct AcopfPlanner;

impl AcopfPlanner {
    fn rules() -> Vec<IntentRule> {
        vec![
            IntentRule::new(
                "solve_case",
                &["solve", "run", "optimize", "dispatch", "load"],
                &["acopf", "opf"],
                0.1,
            ),
            IntentRule::new(
                "modify_load",
                &["set", "change", "adjust", "load", "demand"],
                &["increase", "decrease", "modify", "raise", "lower"],
                0.0,
            ),
            IntentRule::new(
                "modify_gen",
                &["limit", "limits", "capacity", "derate", "unit", "output"],
                &["generator", "generation", "gen"],
                0.0,
            ),
            IntentRule::new(
                "secure_dispatch",
                &["n-1", "preventive", "scopf", "dispatch"],
                &["secure", "security-constrained", "security"],
                0.0,
            ),
            IntentRule::new(
                "status",
                &["current", "show", "what", "summary", "state"],
                &["status"],
                0.0,
            ),
            IntentRule::new(
                "batch_study",
                &["study", "scenarios", "hourly", "profile", "day", "batch"],
                &["sweep", "across", "batch"],
                0.0,
            ),
        ]
    }

    /// Builds the `batch_study` call from the utterance: the scenario
    /// family from its wording, the range from percent pairs, and the
    /// scenario count from a "… in N steps" entity.
    fn batch_call(view: &ConversationView) -> ToolCall {
        let ents = extract_entities(view.user_input);
        let lower = view.user_input.to_lowercase();
        let mut args = json!({});
        let case = ents.case.clone().or_else(|| {
            view.context_value("active_case")
                .and_then(|v| v.as_str().map(String::from))
        });
        if let Some(case) = case {
            args["case_name"] = json!(case);
        }
        if lower.contains("day") || lower.contains("hour") {
            args["kind"] = json!("daily_profile");
        } else if let Some(&bus) = ents.buses.first() {
            args["kind"] = json!("bus_profile");
            args["bus_id"] = json!(bus);
        } else {
            args["kind"] = json!("load_sweep");
        }
        if ents.percent.len() >= 2 {
            args["from_percent"] = json!(ents.percent[0]);
            args["to_percent"] = json!(ents.percent[1]);
        }
        if let Some(steps) = ents.steps {
            args["steps"] = json!(steps);
        }
        ToolCall {
            tool: "batch_study".into(),
            args,
        }
    }

    fn narrate_batch(out: &Value) -> String {
        let rows = out["rows"].as_array().cloned().unwrap_or_default();
        let mut table = String::new();
        for r in &rows {
            if r["converged"].as_bool() == Some(true) {
                table.push_str(&format!(
                    "  {:<16} cost {:>10.2} $/h | {} violation(s) | max loading {:>5.1}% \
                     | min V {:.4} p.u.{}\n",
                    r["label"].as_str().unwrap_or("?"),
                    f(r, "cost_per_hour"),
                    r["violations"],
                    f(r, "max_loading_pct"),
                    f(r, "min_voltage_pu"),
                    if r["degraded"].as_bool() == Some(true) {
                        " (approximate)"
                    } else {
                        ""
                    },
                ));
            } else {
                table.push_str(&format!(
                    "  {:<16} unsolved: {}\n",
                    r["label"].as_str().unwrap_or("?"),
                    r["error"].as_str().unwrap_or("solver failure"),
                ));
            }
        }
        let mut text = format!(
            "Batched study of {}: {} scenarios solved in one pass \
             ({} warm-started, {} flat restart(s)).\n\n{}",
            out["case_name"].as_str().unwrap_or("the case"),
            out["scenarios"],
            out["warm_hits"],
            out["flat_restarts"],
            table,
        );
        if out["cheapest"].is_object() && out["costliest"].is_object() {
            text.push_str(&format!(
                "\nCheapest operating point: {} at {:.2} $/h; costliest: {} at {:.2} $/h.",
                out["cheapest"]["label"].as_str().unwrap_or("?"),
                f(&out["cheapest"], "cost_per_hour"),
                out["costliest"]["label"].as_str().unwrap_or("?"),
                f(&out["costliest"], "cost_per_hour"),
            ));
        }
        match out["worst_violations"]["count"].as_u64() {
            Some(n) if n > 0 => text.push_str(&format!(
                " Most violations: {} in scenario {}.",
                n,
                out["worst_violations"]["label"].as_str().unwrap_or("?"),
            )),
            Some(_) => {
                text.push_str(" No voltage or thermal violations in any scenario.");
            }
            None => {}
        }
        text
    }

    fn narrate_solution(sol: &Value) -> String {
        let net = &sol["network_summary"];
        format!(
            "Solved ACOPF for {}.\n\
             \n\
             Case summary: {} buses, {} generators, {} lines, {} transformers, {} loads; \
             total system load {:.1} MW against {:.1} MW installed capacity.\n\
             \n\
             OPF solution: converged in {} interior-point iterations. \
             Objective value (generation cost): {:.2} $/h. Total generation dispatched {:.2} MW, \
             network losses {:.2} MW, power balance error {:.3} MW.\n\
             Voltage profile: min {:.4} p.u., max {:.4} p.u.; no limits violated. \
             Max branch loading {:.1}% of thermal rating with {} binding constraints. \
             Nodal prices span {:.2}-{:.2} $/MWh.\n\
             Solution quality assessment: Overall={:.1}/10.",
            sol["case_name"].as_str().unwrap_or("the case"),
            net["buses"],
            net["generators"],
            net["lines"],
            net["transformers"],
            net["loads"],
            f(net, "total_load_mw"),
            f(net, "total_gen_capacity_mw"),
            sol["iterations"],
            f(sol, "objective_cost"),
            f(sol, "total_generation_mw"),
            f(sol, "losses_mw"),
            f(sol, "power_balance_error_mw"),
            f(sol, "min_voltage_pu"),
            f(sol, "max_voltage_pu"),
            f(sol, "max_thermal_loading_pct"),
            sol["binding_constraints"],
            f(sol, "lmp_min"),
            f(sol, "lmp_max"),
            f(sol, "quality_overall"),
        )
    }

    fn narrate_modification(out: &Value) -> String {
        format!(
            "Re-solved the ACOPF after setting the load at bus {}. \
             New objective cost {:.2} $/h (previously {:.2} $/h, a change of {:+.2} $/h). \
             Losses are now {:.2} MW; voltage range [{:.4}, {:.4}] p.u.; \
             max branch loading {:.1}%. Quality assessment: Overall={:.1}/10.",
            out["modified_bus"],
            f(out, "objective_cost"),
            f(out, "previous_cost"),
            f(out, "cost_delta"),
            f(out, "losses_mw"),
            f(out, "min_voltage_pu"),
            f(out, "max_voltage_pu"),
            f(out, "max_thermal_loading_pct"),
            f(out, "quality_overall"),
        )
    }

    fn narrate_scopf(out: &Value) -> String {
        format!(
            "Solved the security-constrained OPF. Secure dispatch cost {:.2} $/h against an \
             unconstrained economic optimum of {:.2} $/h — a security premium of {:+.2} $/h \
             covering {} screened post-contingency flow constraints. Losses {:.2} MW; voltage \
             range [{:.4}, {:.4}] p.u. Quality assessment: Overall={:.1}/10.",
            f(out, "objective_cost"),
            f(out, "economic_cost"),
            f(out, "security_premium"),
            out["n_security_constraints"],
            f(out, "losses_mw"),
            f(out, "min_voltage_pu"),
            f(out, "max_voltage_pu"),
            f(out, "quality_overall"),
        )
    }

    fn narrate_status(st: &Value) -> String {
        if st["has_active_case"] == json!(false) {
            return "No case is loaded yet. Ask me to solve one of the IEEE test cases \
                    (14, 30, 57, 118, or 300 bus) to get started."
                .to_string();
        }
        let mods = st["modifications"]
            .as_array()
            .map(|a| {
                a.iter()
                    .filter_map(|m| m.as_str())
                    .collect::<Vec<_>>()
                    .join("; ")
            })
            .unwrap_or_default();
        format!(
            "Active case: {}. Applied modifications: {}. {}",
            st["active_case"].as_str().unwrap_or("?"),
            if mods.is_empty() { "none" } else { &mods },
            if st["has_solution"] == json!(true) {
                if st["solution_stale"] == json!(true) {
                    "An ACOPF solution exists but is stale relative to the latest modifications."
                } else {
                    "A fresh ACOPF solution is available."
                }
            } else {
                "No ACOPF solution has been computed yet."
            }
        )
    }
}

impl Planner for AcopfPlanner {
    fn plan(&self, view: &ConversationView, _style: AnalysisStyle) -> ModelTurn {
        // ---- Later rounds: react to tool results.
        if let Some((tool, result)) = view.pending_results.last() {
            if let Some(err) = error_of(result) {
                // Recovery path: a modification attempted before any case
                // was loaded can be fixed by loading the case first.
                let ents = extract_entities(view.user_input);
                let known_case = ents.case.clone().or_else(|| {
                    view.context_value("active_case")
                        .and_then(|v| v.as_str().map(String::from))
                });
                if let Some(case) =
                    known_case.filter(|_| err.contains("no case loaded") && view.round < 3)
                {
                    return ModelTurn {
                        reasoning: vec![
                            "(recovery: no case in context — load and solve it first)".into()
                        ],
                        action: TurnAction::Calls(vec![ToolCall {
                            tool: "solve_acopf_case".into(),
                            args: json!({"case_name": case}),
                        }]),
                    };
                }
                return ModelTurn {
                    reasoning: vec!["(tool failed; report the failure transparently)".into()],
                    action: TurnAction::Respond(format!(
                        "The {tool} call failed: {err}. No numerical results are available for \
                         this request; please adjust it and try again."
                    )),
                };
            }
            // A successful result: either continue a recovery chain or
            // narrate.
            match tool.as_str() {
                "solve_acopf_case" => {
                    // If the original intent was a modification or a
                    // batched study, the solve was a recovery step: now
                    // do the actual work.
                    let ents = extract_entities(view.user_input);
                    let wanted = classify(view.user_input, &Self::rules()).map(|m| m.intent);
                    if wanted.as_deref() == Some("batch_study") && view.round < 4 {
                        return ModelTurn {
                            reasoning: vec!["(case ready; run the batched study)".into()],
                            action: TurnAction::Calls(vec![Self::batch_call(view)]),
                        };
                    }
                    let wanted_modify = wanted.as_deref() == Some("modify_load");
                    if wanted_modify && !ents.buses.is_empty() && !ents.mw.is_empty() {
                        return ModelTurn {
                            reasoning: vec!["(case ready; apply the requested load change)".into()],
                            action: TurnAction::Calls(vec![ToolCall {
                                tool: "modify_bus_load".into(),
                                args: json!({
                                    "bus_id": ents.buses[0],
                                    "p_mw": ents.mw[0],
                                }),
                            }]),
                        };
                    }
                    return ModelTurn {
                        reasoning: vec!["(validate results)".into(), "(narrate findings)".into()],
                        action: TurnAction::Respond(with_caveats(
                            view,
                            Self::narrate_solution(result),
                        )),
                    };
                }
                "modify_bus_load" => {
                    return ModelTurn {
                        reasoning: vec!["(validate results)".into(), "(summary)".into()],
                        action: TurnAction::Respond(with_caveats(
                            view,
                            Self::narrate_modification(result),
                        )),
                    };
                }
                "modify_gen_limits" => {
                    return ModelTurn {
                        reasoning: vec!["(validate results)".into(), "(summary)".into()],
                        action: TurnAction::Respond(with_caveats(
                            view,
                            format!(
                                "Re-solved after changing the limits of {} unit(s) at bus {}. \
                                 New objective cost {:.2} $/h (a change of {:+.2} $/h); losses \
                                 {:.2} MW; max loading {:.1}%.",
                                result["units_modified"],
                                result["modified_bus"],
                                f(result, "objective_cost"),
                                f(result, "cost_delta"),
                                f(result, "losses_mw"),
                                f(result, "max_thermal_loading_pct"),
                            ),
                        )),
                    };
                }
                "solve_security_constrained" => {
                    return ModelTurn {
                        reasoning: vec![
                            "(validate the secure dispatch)".into(),
                            "(compare against the economic optimum)".into(),
                        ],
                        action: TurnAction::Respond(with_caveats(
                            view,
                            Self::narrate_scopf(result),
                        )),
                    };
                }
                "batch_study" => {
                    return ModelTurn {
                        reasoning: vec![
                            "(validate per-scenario results)".into(),
                            "(narrate the study table)".into(),
                        ],
                        action: TurnAction::Respond(with_caveats(
                            view,
                            Self::narrate_batch(result),
                        )),
                    };
                }
                "get_network_status" => {
                    return ModelTurn {
                        reasoning: vec!["(summarize current state)".into()],
                        action: TurnAction::Respond(with_caveats(
                            view,
                            Self::narrate_status(result),
                        )),
                    };
                }
                _ => {}
            }
        }

        // ---- First round: parse intent and plan.
        let ents = extract_entities(view.user_input);
        let intent = classify(view.user_input, &Self::rules());
        let active_case = view
            .context_value("active_case")
            .and_then(|v| v.as_str().map(String::from));

        match intent.as_ref().map(|m| m.intent.as_str()) {
            Some("modify_load") if !ents.buses.is_empty() && !ents.mw.is_empty() => ModelTurn {
                reasoning: vec![
                    "(understand the task to solve)".into(),
                    "(retrieve current net status)".into(),
                    "(prepare data for tools)".into(),
                    "(invoke ACOPF solver again)".into(),
                ],
                action: TurnAction::Calls(vec![ToolCall {
                    tool: "modify_bus_load".into(),
                    args: json!({"bus_id": ents.buses[0], "p_mw": ents.mw[0]}),
                }]),
            },
            Some("status") => ModelTurn {
                reasoning: vec![
                    "(understand the task)".into(),
                    "(query stored state)".into(),
                ],
                action: TurnAction::Calls(vec![ToolCall {
                    tool: "get_network_status".into(),
                    args: json!({}),
                }]),
            },
            Some("modify_gen")
                if !ents.buses.is_empty() && ents.numbers.len() + ents.mw.len() >= 2 =>
            {
                // "limit the generator at bus 2 to between 10 and 60 MW"
                let mut vals: Vec<f64> = ents.mw.clone();
                vals.extend(
                    ents.numbers
                        .iter()
                        .copied()
                        .filter(|v| *v != ents.buses[0] as f64),
                );
                vals.sort_by(|a, b| a.total_cmp(b));
                let (lo, hi) = (vals[0], *vals.last().unwrap());
                ModelTurn {
                    reasoning: vec![
                        "(understand the task: generator limit change)".into(),
                        "(apply limits and re-solve)".into(),
                    ],
                    action: TurnAction::Calls(vec![ToolCall {
                        tool: "modify_gen_limits".into(),
                        args: json!({
                            "bus_id": ents.buses[0],
                            "p_min_mw": lo,
                            "p_max_mw": hi,
                        }),
                    }]),
                }
            }
            Some("secure_dispatch") => {
                let mut args = json!({});
                if let Some(case) = ents.case.clone().or(active_case.clone()) {
                    args["case_name"] = json!(case);
                }
                ModelTurn {
                    reasoning: vec![
                        "(understand the task: security-constrained operation)".into(),
                        "(screen contingencies and solve the SCOPF)".into(),
                    ],
                    action: TurnAction::Calls(vec![ToolCall {
                        tool: "solve_security_constrained".into(),
                        args,
                    }]),
                }
            }
            Some("batch_study") => ModelTurn {
                reasoning: vec![
                    "(understand the task: a family of operating points)".into(),
                    "(build the scenario set)".into(),
                    "(one batched power-flow run, then summarize)".into(),
                ],
                action: TurnAction::Calls(vec![Self::batch_call(view)]),
            },
            Some("solve_case") | Some("modify_load") | None => {
                let case = ents.case.clone().or(active_case);
                match case {
                    Some(case) => ModelTurn {
                        reasoning: vec![
                            "(understand the case to be solved)".into(),
                            "(extract relevant parameters)".into(),
                            "(plan solution strategy)".into(),
                            "(invoke ACOPF solver)".into(),
                        ],
                        action: TurnAction::Calls(vec![ToolCall {
                            tool: "solve_acopf_case".into(),
                            args: json!({"case_name": case}),
                        }]),
                    },
                    None => ModelTurn {
                        reasoning: vec!["(cannot identify a target case)".into()],
                        action: TurnAction::Respond(
                            "I could not identify which IEEE case you mean. Supported cases: \
                             case14, case30, case57, case118, case300 — for example, \"solve \
                             IEEE 118\"."
                                .to_string(),
                        ),
                    },
                }
            }
            Some(_) => ModelTurn {
                reasoning: vec!["(intent outside my capabilities)".into()],
                action: TurnAction::Respond(
                    "I handle ACOPF solving, load modifications, and network status for the \
                     IEEE test cases."
                        .to_string(),
                ),
            },
        }
    }
}

// ---------------------------------------------------------------------
// Contingency analysis agent planner
// ---------------------------------------------------------------------

/// Planner for the contingency analysis agent (tools of Appendix B.3.2).
pub struct CaPlanner;

impl CaPlanner {
    fn rules() -> Vec<IntentRule> {
        vec![
            IntentRule::new(
                "full_analysis",
                &[
                    "n-1",
                    "t-1",
                    "outages",
                    "reliability",
                    "security",
                    "vulnerab",
                    "run",
                ],
                &["contingency", "contingencies", "critical"],
                0.1,
            ),
            IntentRule::new(
                "specific",
                &["analyze", "outage", "remove", "removing", "trip", "impact"],
                &["specific"],
                0.0,
            ),
            IntentRule::new(
                "gen_outages",
                &["unit", "units", "outage", "loss", "losing", "trip"],
                &["generator", "generators", "gen"],
                0.0,
            ),
            IntentRule::new(
                "base_case",
                &["solve", "base", "power", "flow"],
                &["base"],
                0.0,
            ),
            IntentRule::new("status", &["current", "show", "summary"], &["status"], 0.0),
        ]
    }

    fn strategy_for(style: AnalysisStyle) -> &'static str {
        match style {
            AnalysisStyle::Composite => "composite",
            AnalysisStyle::OverloadFirst => "overload_first",
        }
    }

    fn narrate_report(rep: &Value, top_k: usize) -> String {
        let ranking = rep["ranking"].as_array().cloned().unwrap_or_default();
        let top: Vec<String> = ranking
            .iter()
            .take(top_k)
            .map(|r| {
                format!(
                    "  {}. {} — {}",
                    r["rank"].as_u64().unwrap_or(0) + 1,
                    r["label"].as_str().unwrap_or("?"),
                    r["justification"].as_str().unwrap_or(""),
                )
            })
            .collect();
        let max_overload = f(rep, "max_overload_pct");
        // Honest fidelity statement: a cascade/screened sweep must say
        // how many outages were classified from the DC estimate alone.
        let screened_out = rep["screened_out"].as_u64().unwrap_or(0);
        let fidelity = match rep["mode"].as_str() {
            Some("cascade") if screened_out > 0 => format!(
                " The sweep used DC screening with AC verification: {} outages were \
                 AC-verified and {} were classified secure from the linear screen alone.",
                rep["ac_verified"], screened_out
            ),
            Some("screened") => format!(
                " The sweep used the fast DC screen: {} outages were classified from the \
                 linear estimate without an AC solve and can hide voltage-only violations.",
                screened_out
            ),
            _ => String::new(),
        };
        let mut s = format!(
            "I ran a full N-1 contingency analysis on {} (lines and transformers), after \
             solving the base case.\n\
             \n\
             Contingencies analyzed: {} ({} lines + {} transformers).{} \
             Total violation occurrences: {}; {} outages cause thermal overloads and {} cause \
             voltage violations against the {}\u{2013}{} p.u. band. \
             Maximum post-contingency loading observed: {:.0}%.\n\
             \n\
             Most critical elements:\n{}\n",
            rep["case_name"].as_str().unwrap_or("the case"),
            rep["n_contingencies"],
            rep["n_lines"],
            rep["n_trafos"],
            fidelity,
            rep["total_violations"],
            rep["outages_with_overloads"],
            rep["outages_with_voltage_issues"],
            rep["voltage_band"][0].as_f64().unwrap_or(0.95),
            rep["voltage_band"][1].as_f64().unwrap_or(1.05),
            max_overload,
            top.join("\n"),
        );
        s.push_str("\nRecommendations:\n");
        if max_overload > 100.0 {
            s.push_str(
                "  - Reinforce or redispatch around the overloaded corridors above; verify \
                 ratings before operating close to them.\n",
            );
        }
        if rep["outages_with_voltage_issues"].as_u64().unwrap_or(0) > 0 {
            s.push_str(
                "  - Add reactive support (shunt capacitors / SVC) near the depressed buses \
                 and review transformer tap setpoints.\n",
            );
        }
        s.push_str(
            "  - Re-run the N-1 screen after any corrective action to validate the mitigation.",
        );
        s
    }

    fn narrate_specific(out: &Value) -> String {
        if out["islands"] == json!(true) {
            return format!(
                "Outage of {} splits the network: {} buses would be stranded, shedding \
                 {:.1} MW of load. This is a categorical reliability violation.",
                out["label"].as_str().unwrap_or("?"),
                out["stranded_buses"],
                f(out, "load_shed_mw"),
            );
        }
        if out["converged"] == json!(false) {
            return format!(
                "Outage of {}: the post-contingency power flow does not converge, indicating \
                 voltage-collapse risk. Treat this contingency as critical.",
                out["label"].as_str().unwrap_or("?"),
            );
        }
        format!(
            "Outage of {}: converged. {} violations ({} total); max branch loading {:.1}%, \
             lowest voltage {:.3} p.u. at bus {}.",
            out["label"].as_str().unwrap_or("?"),
            if out["n_violations"].as_u64().unwrap_or(0) == 0 {
                "No".to_string()
            } else {
                out["n_violations"].to_string()
            },
            out["n_violations"],
            f(out, "max_loading_pct"),
            f(out, "min_voltage_pu"),
            out["min_voltage_bus"],
        )
    }
}

impl Planner for CaPlanner {
    fn plan(&self, view: &ConversationView, style: AnalysisStyle) -> ModelTurn {
        let ents = extract_entities(view.user_input);
        let top_k = ents.top_k.unwrap_or(5);

        // ---- React to pending results.
        if let Some((tool, result)) = view.pending_results.last() {
            if let Some(err) = error_of(result) {
                let known_case = ents.case.clone().or_else(|| {
                    view.context_value("active_case")
                        .and_then(|v| v.as_str().map(String::from))
                });
                if let Some(case) =
                    known_case.filter(|_| err.contains("no case loaded") && view.round < 3)
                {
                    return ModelTurn {
                        reasoning: vec!["(recovery: solve the base case first)".into()],
                        action: TurnAction::Calls(vec![ToolCall {
                            tool: "solve_base_case".into(),
                            args: json!({"case_name": case}),
                        }]),
                    };
                }
                return ModelTurn {
                    reasoning: vec!["(tool failed; report transparently)".into()],
                    action: TurnAction::Respond(format!(
                        "The {tool} call failed: {err}. I cannot report contingency results \
                         without a successful analysis."
                    )),
                };
            }
            match tool.as_str() {
                "solve_base_case" => {
                    return ModelTurn {
                        reasoning: vec![
                            "(base case validated; run the N-1 sweep)".into(),
                            "(run contingency analysis)".into(),
                        ],
                        action: TurnAction::Calls(vec![ToolCall {
                            tool: "run_n1_contingency_analysis".into(),
                            args: json!({
                                "strategy": Self::strategy_for(style),
                                "top_k": top_k.max(10),
                            }),
                        }]),
                    };
                }
                "run_n1_contingency_analysis" => {
                    return ModelTurn {
                        reasoning: vec![
                            "(validate the sweep results)".into(),
                            "(rank critical elements and justify)".into(),
                        ],
                        action: TurnAction::Respond(with_caveats(
                            view,
                            Self::narrate_report(result, top_k),
                        )),
                    };
                }
                "analyze_specific_contingency" => {
                    return ModelTurn {
                        reasoning: vec!["(interpret the outage result)".into()],
                        action: TurnAction::Respond(with_caveats(
                            view,
                            Self::narrate_specific(result),
                        )),
                    };
                }
                "run_generator_contingency_analysis" => {
                    let ranking = result["ranking"].as_array().cloned().unwrap_or_default();
                    let lines: Vec<String> = ranking
                        .iter()
                        .map(|r| {
                            let tag = if r["loses_reference"] == json!(true) {
                                " [loses the reference machine]".to_string()
                            } else if r["converged"] == json!(false) {
                                " [post-outage power flow does not converge]".to_string()
                            } else {
                                format!(
                                    " ({} violations, slack pickup {:.0} MW)",
                                    r["n_violations"],
                                    f(r, "slack_pickup_mw")
                                )
                            };
                            format!(
                                "  - unit {} at bus {} losing {:.0} MW{}",
                                r["gen"],
                                r["bus_id"],
                                f(r, "lost_mw"),
                                tag
                            )
                        })
                        .collect();
                    return ModelTurn {
                        reasoning: vec!["(rank unit outages by system stress)".into()],
                        action: TurnAction::Respond(with_caveats(
                            view,
                            format!(
                                "I simulated the outage of all {} in-service generating units. \
                                 {} did not converge and {} caused violations. Most critical unit \
                                 outages:\n{}",
                                result["n_units"],
                                result["units_not_converged"],
                                result["units_with_violations"],
                                lines.join("\n"),
                            ),
                        )),
                    };
                }
                "get_contingency_status" => {
                    let text = if result["has_analysis"] == json!(true) {
                        Self::narrate_report(result, top_k)
                    } else {
                        "No fresh contingency analysis exists for the current network state; \
                         ask me to run the N-1 analysis."
                            .to_string()
                    };
                    return ModelTurn {
                        reasoning: vec!["(summarize cached analysis)".into()],
                        action: TurnAction::Respond(with_caveats(view, text)),
                    };
                }
                _ => {}
            }
        }

        // ---- First round.
        let intent = classify(view.user_input, &Self::rules());
        match intent.as_ref().map(|m| m.intent.as_str()) {
            Some("specific") if !ents.elements.is_empty() => {
                let (kind, index) = ents.elements[0].clone();
                ModelTurn {
                    reasoning: vec![
                        "(understand task)".into(),
                        "(analyze the specific element outage)".into(),
                    ],
                    action: TurnAction::Calls(vec![ToolCall {
                        tool: "analyze_specific_contingency".into(),
                        args: json!({"element": kind, "index": index}),
                    }]),
                }
            }
            Some("status") => ModelTurn {
                reasoning: vec!["(check analysis status)".into()],
                action: TurnAction::Calls(vec![ToolCall {
                    tool: "get_contingency_status".into(),
                    args: json!({}),
                }]),
            },
            Some("gen_outages") => ModelTurn {
                reasoning: vec![
                    "(understand task: unit T-1 outages)".into(),
                    "(sweep generator outages)".into(),
                ],
                action: TurnAction::Calls(vec![ToolCall {
                    tool: "run_generator_contingency_analysis".into(),
                    args: json!({"top_k": top_k}),
                }]),
            },
            Some("base_case") => {
                let mut args = json!({});
                if let Some(case) = &ents.case {
                    args["case_name"] = json!(case);
                }
                ModelTurn {
                    reasoning: vec!["(solve the base case)".into()],
                    action: TurnAction::Calls(vec![ToolCall {
                        tool: "solve_base_case".into(),
                        args,
                    }]),
                }
            }
            _ => {
                // Full analysis (also the default for anything
                // contingency-flavoured): ensure a base case, then sweep.
                let mut args = json!({});
                if let Some(case) = &ents.case {
                    args["case_name"] = json!(case);
                }
                ModelTurn {
                    reasoning: vec![
                        "(understand task)".into(),
                        "(solve base case before contingencies)".into(),
                    ],
                    action: TurnAction::Calls(vec![ToolCall {
                        tool: "solve_base_case".into(),
                        args,
                    }]),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gm_agents::AgentMemory;

    fn turn_of(planner: &dyn Planner, input: &str) -> ModelTurn {
        let memory = AgentMemory::new("t", "p");
        let view = memory.view(input);
        planner.plan(&view, AnalysisStyle::Composite)
    }

    #[test]
    fn acopf_solve_intent_plans_solver_call() {
        let t = turn_of(&AcopfPlanner, "solve IEEE 118");
        match t.action {
            TurnAction::Calls(calls) => {
                assert_eq!(calls[0].tool, "solve_acopf_case");
                assert_eq!(calls[0].args["case_name"], json!("case118"));
            }
            other => panic!("expected calls, got {other:?}"),
        }
        assert!(t.reasoning.iter().any(|r| r.contains("understand")));
    }

    #[test]
    fn acopf_modify_intent_extracts_entities() {
        let t = turn_of(&AcopfPlanner, "Increase the load for bus 10 to 50MW");
        match t.action {
            TurnAction::Calls(calls) => {
                assert_eq!(calls[0].tool, "modify_bus_load");
                assert_eq!(calls[0].args["bus_id"], json!(10));
                assert_eq!(calls[0].args["p_mw"], json!(50.0));
            }
            other => panic!("expected calls, got {other:?}"),
        }
    }

    #[test]
    fn acopf_unknown_case_asks_for_clarification() {
        let t = turn_of(&AcopfPlanner, "solve the grid");
        match t.action {
            TurnAction::Respond(text) => assert!(text.contains("could not identify")),
            other => panic!("expected respond, got {other:?}"),
        }
    }

    #[test]
    fn acopf_uses_active_case_from_context() {
        let mut memory = AgentMemory::new("t", "p");
        memory.put_context("active_case", json!("case57"));
        let view = memory.view("solve it again");
        let t = AcopfPlanner.plan(&view, AnalysisStyle::Composite);
        match t.action {
            TurnAction::Calls(calls) => {
                assert_eq!(calls[0].args["case_name"], json!("case57"));
            }
            other => panic!("expected calls, got {other:?}"),
        }
    }

    #[test]
    fn ca_full_analysis_starts_with_base_case() {
        let t = turn_of(
            &CaPlanner,
            "what's the most critical contingencies in this network",
        );
        match t.action {
            TurnAction::Calls(calls) => assert_eq!(calls[0].tool, "solve_base_case"),
            other => panic!("expected calls, got {other:?}"),
        }
    }

    #[test]
    fn ca_base_result_chains_to_sweep_with_style() {
        let memory = AgentMemory::new("t", "p");
        let mut view = memory.view("find the top 5 critical lines");
        view.pending_results
            .push(("solve_base_case".into(), json!({"converged": true})));
        let t = CaPlanner.plan(&view, AnalysisStyle::OverloadFirst);
        match t.action {
            TurnAction::Calls(calls) => {
                assert_eq!(calls[0].tool, "run_n1_contingency_analysis");
                assert_eq!(calls[0].args["strategy"], json!("overload_first"));
            }
            other => panic!("expected calls, got {other:?}"),
        }
    }

    #[test]
    fn ca_specific_element_plan() {
        let t = turn_of(&CaPlanner, "analyze the outage of line 171");
        match t.action {
            TurnAction::Calls(calls) => {
                assert_eq!(calls[0].tool, "analyze_specific_contingency");
                assert_eq!(calls[0].args["element"], json!("line"));
                assert_eq!(calls[0].args["index"], json!(171));
            }
            other => panic!("expected calls, got {other:?}"),
        }
    }

    #[test]
    fn narration_quotes_tool_numbers() {
        let rep = json!({
            "case_name": "IEEE 118-bus system",
            "n_contingencies": 186, "n_lines": 175, "n_trafos": 11,
            "total_violations": 665,
            "outages_with_overloads": 3, "outages_with_voltage_issues": 40,
            "max_overload_pct": 137.0,
            "voltage_band": [0.95, 1.05],
            "ranking": [
                {"rank": 0, "label": "line 6", "justification": "2 thermal overloads up to 137%",
                 "max_loading_pct": 137.0, "min_voltage_pu": 0.94, "min_voltage_bus": 52,
                 "n_thermal": 2, "n_voltage": 1, "islands": false, "load_shed_mw": 0.0},
            ],
        });
        let text = CaPlanner::narrate_report(&rep, 5);
        assert!(text.contains("186"));
        assert!(text.contains("137"));
        assert!(text.contains("line 6"));
        assert!(text.contains("Recommendations"));
    }

    #[test]
    fn narration_discloses_cascade_screening() {
        // Through the real wire format (report_to_json), not a hand-built
        // JSON: the narrated answer for a cascade sweep must disclose how
        // many outages were screened out vs AC-verified.
        let net = gm_network::cases::load(gm_network::CaseId::Ieee118);
        let opts = gm_contingency::CaOptions::default();
        let rep = gm_contingency::run_n1(&net, &opts, None).expect("sweep");
        assert!(rep.screened_out > 0, "cascade screened nothing out");
        let j = crate::tools_ca::report_to_json(&rep, 5);
        assert_eq!(j["mode"], json!("cascade"));
        let text = CaPlanner::narrate_report(&j, 5);
        assert!(
            text.contains("classified secure from the linear screen alone"),
            "cascade narration hides the screening: {text}"
        );
        assert!(text.contains(&format!("{}", rep.ac_verified)));
    }

    #[test]
    fn degraded_results_carry_their_caveat_into_narration() {
        let caveat = crate::recovery::caveat(
            "AC optimal power flow",
            "barrier stall",
            "DC optimal power flow",
        );
        let memory = AgentMemory::new("t", "p");
        let mut view = memory.view("solve case14");
        // A degraded base case earlier in the turn, then a clean sweep:
        // the caveat must survive the chain into the final narration.
        view.pending_results.push((
            "solve_base_case".into(),
            json!({"converged": true, "degraded_caveat": caveat}),
        ));
        view.pending_results.push((
            "run_n1_contingency_analysis".into(),
            json!({"case_name": "case14", "n_contingencies": 20, "ranking": []}),
        ));
        let t = CaPlanner.plan(&view, AnalysisStyle::Composite);
        match t.action {
            TurnAction::Respond(text) => {
                assert!(
                    text.contains(crate::recovery::CAVEAT_PREFIX),
                    "degraded answers must be caveated, got: {text}"
                );
                assert!(text.contains("barrier stall"));
            }
            other => panic!("expected respond, got {other:?}"),
        }
    }

    #[test]
    fn error_results_narrated_transparently() {
        let memory = AgentMemory::new("t", "p");
        let mut view = memory.view("solve case118");
        view.pending_results.push((
            "solve_acopf_case".into(),
            json!({"error": "ACOPF did not converge", "recoverable": true}),
        ));
        let t = AcopfPlanner.plan(&view, AnalysisStyle::Composite);
        match t.action {
            TurnAction::Respond(text) => {
                assert!(text.contains("failed"));
                assert!(text.contains("did not converge"));
            }
            other => panic!("expected respond, got {other:?}"),
        }
    }
}
