//! The GridMind system: planner agent, coordinator, and instrumentation.
//!
//! The planner agent (§3, component 4) classifies each user request and
//! assigns it to the right domain agent; the coordinator (component 3)
//! manages the shared session context, splits compound requests ("solve
//! IEEE 118, then run contingency analysis…") into sequential agent
//! steps, keeps every agent's memory synchronized with the session, and
//! records the instrumentation the paper's evaluation is built on (model
//! latency, token usage, tool metrics).

use crate::agents::{build_acopf_agent, build_ca_agent};
use crate::session::{SessionContext, SharedSession};
use gm_agents::{
    classify, Agent, AgentResponse, IntentRule, ModelProfile, TokenUsage, VirtualClock,
};
use serde::{Deserialize, Serialize};
use serde_json::json;

/// Which domain agent a request (segment) is routed to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum AgentKind {
    /// Economic scheduling / power flow analysis.
    Acopf,
    /// Reliability / N-1 assessment.
    Contingency,
}

/// One step of a routed workflow.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct WorkflowStep {
    /// Target agent.
    pub agent: AgentKind,
    /// The request segment handed to it.
    pub request: String,
    /// Completion state (the paper's `WorkflowState` tracks plan
    /// progress).
    pub completed: bool,
}

/// Telemetry for one agent turn (the paper's "instrumentation bench").
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TurnMetric {
    /// Agent name.
    pub agent: String,
    /// Backend model name.
    pub model: String,
    /// The request segment.
    pub request: String,
    /// Virtual end-to-end latency (s).
    pub elapsed_s: f64,
    /// Token usage.
    pub tokens: TokenUsage,
    /// Tool calls made.
    pub tool_calls: usize,
    /// Whether any tool call failed.
    pub had_tool_failures: bool,
    /// Validation warnings/errors surfaced.
    pub validation_findings: usize,
    /// Whether the turn produced a narrated answer.
    pub completed: bool,
}

/// A coordinated (possibly multi-agent) reply.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CoordinatedResponse {
    /// Narrated answers, one per workflow step, joined for display.
    pub text: String,
    /// The executed workflow.
    pub steps: Vec<WorkflowStep>,
    /// Per-step agent responses.
    pub responses: Vec<AgentResponse>,
    /// Total virtual latency (s).
    pub elapsed_s: f64,
    /// Total token usage.
    pub tokens: TokenUsage,
}

/// The assembled multi-agent system.
pub struct GridMind {
    /// Shared session context.
    pub session: SharedSession,
    clock: VirtualClock,
    acopf: Agent,
    ca: Agent,
    profile: ModelProfile,
    metrics: Vec<TurnMetric>,
}

impl GridMind {
    /// Builds the system with a model profile shared by every agent.
    pub fn new(profile: ModelProfile) -> GridMind {
        GridMind::with_session(profile, SessionContext::new())
    }

    /// Builds the system around an externally constructed session —
    /// the gm-serve entry point, where the session carries a shared
    /// cross-session solver cache.
    pub fn with_session(profile: ModelProfile, session: SharedSession) -> GridMind {
        let clock = VirtualClock::new();
        // Telemetry timestamps follow the session's virtual timeline.
        session.telemetry.attach_clock(clock.clone());
        let acopf = build_acopf_agent(profile.clone(), session.clone(), clock.clone());
        let ca = build_ca_agent(profile.clone(), session.clone(), clock.clone());
        GridMind {
            session,
            clock,
            acopf,
            ca,
            profile,
            metrics: Vec::new(),
        }
    }

    /// The model profile in use.
    pub fn profile(&self) -> &ModelProfile {
        &self.profile
    }

    /// The session's virtual clock.
    pub fn clock(&self) -> &VirtualClock {
        &self.clock
    }

    /// Instrumentation records collected so far.
    pub fn metrics(&self) -> &[TurnMetric] {
        &self.metrics
    }

    /// The planner agent's routing rules.
    fn routing_rules() -> Vec<IntentRule> {
        vec![
            IntentRule::new(
                "acopf",
                &[
                    "solve", "opf", "dispatch", "cost", "load", "modify", "increase", "decrease",
                    "economic", "optimal", "status", "set", "limit",
                ],
                &["acopf"],
                0.05,
            ),
            IntentRule::new(
                "contingency",
                &[
                    "n-1",
                    "t-1",
                    "outage",
                    "reliability",
                    "critical",
                    "vulnerab",
                    "reinforce",
                    "violation",
                    "lose",
                    "losing",
                    "trip",
                    "unit",
                    "generator",
                ],
                &["contingency", "contingencies"],
                0.0,
            ),
        ]
    }

    /// Routes one request segment (the planner agent's decision).
    pub fn route(request: &str) -> AgentKind {
        match classify(request, &Self::routing_rules()) {
            Some(m) if m.intent == "contingency" => AgentKind::Contingency,
            _ => AgentKind::Acopf,
        }
    }

    /// Splits a compound request into sequential segments ("solve IEEE
    /// 118, then run contingency analysis and identify critical
    /// elements" → two steps).
    pub fn split_compound(request: &str) -> Vec<String> {
        let lowered = request.to_ascii_lowercase();
        // Split on explicit sequencing markers only: "then" after a comma
        // or semicolon, or the word "then" itself.
        let mut segments = Vec::new();
        let mut rest = lowered.as_str();
        let mut original_rest = request;
        while let Some(pos) = rest.find(" then ") {
            let (head, tail) = original_rest.split_at(pos);
            segments.push(head.trim_matches([' ', ',', ';']).to_string());
            original_rest = &tail[" then ".len()..];
            rest = &rest[pos + " then ".len()..];
        }
        let last = original_rest.trim_matches([' ', ',', ';']).to_string();
        if !last.is_empty() {
            segments.push(last);
        }
        segments.retain(|s| !s.is_empty());
        if segments.is_empty() {
            segments.push(request.to_string());
        }
        segments
    }

    /// Synchronizes the shared session into an agent's memory context so
    /// its planner can ground references ("solve it again", "this
    /// network").
    fn sync_context(session: &SharedSession, agent: &mut Agent) {
        if let Some(case) = session.active_case() {
            agent.memory.put_context("active_case", json!(case));
        }
        agent
            .memory
            .put_context("diff_count", json!(session.diff_count()));
        if let Some((sol, stale)) = session.any_acopf() {
            agent.memory.put_context(
                "acopf_summary",
                json!({
                    "objective_cost": sol.objective_cost,
                    "stale": stale,
                }),
            );
        }
    }

    /// Handles a user request end-to-end: plan, route, execute, narrate.
    pub fn ask(&mut self, request: &str) -> CoordinatedResponse {
        // Everything below — routing, agent turns, tool calls, solver
        // iterations (including rayon workers, which re-install this
        // registry) — records into the session's registry.
        let _collector = self.session.telemetry.install();
        let _span = gm_telemetry::span!("coordinator.ask");
        gm_telemetry::counter_add("coordinator.requests", 1);
        let t0 = self.clock.now();
        let segments = Self::split_compound(request);
        let mut steps = Vec::new();
        let mut responses = Vec::new();
        let mut texts = Vec::new();
        let mut tokens = TokenUsage::default();

        for segment in segments {
            let kind = Self::route(&segment);
            let (agent, name): (&mut Agent, &str) = match kind {
                AgentKind::Acopf => (&mut self.acopf, "ACOPF Agent"),
                AgentKind::Contingency => (&mut self.ca, "Contingency Analysis Agent"),
            };
            gm_telemetry::counter_add(
                match kind {
                    AgentKind::Acopf => "route.acopf",
                    AgentKind::Contingency => "route.contingency",
                },
                1,
            );
            // Latency-accounting kind (distinct from agent routing): the
            // serve layer buckets its per-request quantile sketches by
            // the same labels, so the counters here let a trace explain
            // *what mix* of query kinds produced a latency distribution.
            gm_telemetry::counter_add(
                match crate::query_kind::classify_query_kind(&segment) {
                    "contingency" => "query.kind.contingency",
                    "batch" => "query.kind.batch",
                    "mutate" => "query.kind.mutate",
                    "status" => "query.kind.status",
                    "pf" => "query.kind.pf",
                    _ => "query.kind.other",
                },
                1,
            );
            gm_telemetry::counter_add("coordinator.steps", 1);
            gm_telemetry::event("coordinator", format!("routing {segment:?} -> {name}"));
            let step_span = gm_telemetry::span!("coordinator.step", agent = name);
            Self::sync_context(&self.session, agent);
            let resp = agent.handle(&segment);
            drop(step_span);
            tokens.add(resp.tokens);
            self.metrics.push(TurnMetric {
                agent: name.to_string(),
                model: self.profile.name.clone(),
                request: segment.clone(),
                elapsed_s: resp.elapsed_s,
                tokens: resp.tokens,
                tool_calls: resp.tool_calls.len(),
                had_tool_failures: resp.tool_calls.iter().any(|c| !c.ok),
                validation_findings: resp.validation.len(),
                completed: resp.completed,
            });
            steps.push(WorkflowStep {
                agent: kind,
                request: segment,
                completed: resp.completed,
            });
            texts.push(format!("[{name}] {}", resp.text));
            responses.push(resp);
        }

        CoordinatedResponse {
            text: texts.join("\n\n"),
            steps,
            responses,
            elapsed_s: self.clock.now() - t0,
            tokens,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mind() -> GridMind {
        GridMind::new(ModelProfile::by_name("GPT-o3").unwrap())
    }

    #[test]
    fn routing_decisions() {
        assert_eq!(GridMind::route("solve IEEE 118"), AgentKind::Acopf);
        assert_eq!(
            GridMind::route("what's the most critical contingencies in this network"),
            AgentKind::Contingency
        );
        assert_eq!(
            GridMind::route("run n-1 reliability assessment"),
            AgentKind::Contingency
        );
        assert_eq!(
            GridMind::route("increase the load at bus 10"),
            AgentKind::Acopf
        );
    }

    #[test]
    fn compound_split() {
        let segs = GridMind::split_compound(
            "Solve IEEE 118 case, then run contingency analysis and identify critical elements",
        );
        assert_eq!(segs.len(), 2);
        assert!(segs[0].to_lowercase().contains("solve"));
        assert!(segs[1].to_lowercase().contains("contingency"));
        assert_eq!(GridMind::split_compound("solve case14").len(), 1);
    }

    #[test]
    fn single_domain_request() {
        let mut gm = mind();
        let resp = gm.ask("solve case14");
        assert_eq!(resp.steps.len(), 1);
        assert!(resp.steps[0].completed);
        assert!(resp.text.contains("Solved ACOPF"));
        assert!(resp.elapsed_s > 0.0);
        assert_eq!(gm.metrics().len(), 1);
        assert!(!gm.metrics()[0].had_tool_failures);
    }

    #[test]
    fn cross_domain_workflow_shares_context() {
        // The paper's Fig. 9 workflow: ACOPF → CA with shared context.
        let mut gm = mind();
        let resp = gm.ask(
            "Solve IEEE 14 case, then run contingency analysis and identify critical elements",
        );
        assert_eq!(resp.steps.len(), 2);
        assert_eq!(resp.steps[0].agent, AgentKind::Acopf);
        assert_eq!(resp.steps[1].agent, AgentKind::Contingency);
        assert!(resp.steps.iter().all(|s| s.completed), "{}", resp.text);
        // Both agents worked the same session.
        assert!(gm.session.fresh_acopf().is_some());
        assert!(gm.session.fresh_contingency().is_some());
        assert!(resp.text.contains("Most critical elements"));
        // The CA step must not have had to name the case again.
        assert!(gm.metrics()[1].tool_calls >= 2);
    }

    #[test]
    fn what_if_iteration_accumulates() {
        let mut gm = mind();
        gm.ask("solve case14");
        let r1 = gm.ask("increase the load at bus 10 to 50 MW");
        assert!(r1.steps[0].completed, "{}", r1.text);
        let r2 = gm.ask("now set the load at bus 14 to 30 MW");
        assert!(r2.steps[0].completed, "{}", r2.text);
        assert_eq!(gm.session.diff_count(), 2);
        assert_eq!(gm.metrics().len(), 3);
    }

    #[test]
    fn ask_records_routing_telemetry() {
        let mut gm = mind();
        gm.ask("solve case14");
        let reg = &gm.session.telemetry;
        assert_eq!(reg.counter_value("coordinator.requests"), 1);
        assert_eq!(reg.counter_value("coordinator.steps"), 1);
        assert_eq!(reg.counter_value("route.acopf"), 1);
        assert!(reg.counter_value("tool.invocations") >= 1);
        assert!(reg.counter_value("llm.turns") >= 1);
        // The routing decision shows up as a structured event, and the
        // step span nests under the request span.
        assert!(reg
            .events()
            .iter()
            .any(|e| e.target == "coordinator" && e.message.contains("ACOPF Agent")));
        let spans = reg.spans();
        let ask = spans
            .iter()
            .find(|s| s.name == "coordinator.ask")
            .expect("request span");
        assert!(ask.parent.is_none());
        assert!(spans
            .iter()
            .any(|s| s.name == "coordinator.step" && s.parent == Some(ask.id)));
    }

    #[test]
    fn metrics_capture_latency_and_tokens() {
        let mut gm = mind();
        gm.ask("solve case30");
        let m = &gm.metrics()[0];
        assert!(m.elapsed_s > 1.0, "simulated latency should be seconds");
        assert!(m.tokens.total() > 50);
        assert_eq!(m.model, "GPT-o3");
        assert!(m.completed);
    }
}
