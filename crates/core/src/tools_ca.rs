//! The contingency analysis agent's function tools (Appendix B.3.2):
//! `solve_base_case`, `run_n1_contingency_analysis`,
//! `analyze_specific_contingency`, `get_contingency_status`.

use crate::recovery::solve_base_recovered;
use crate::session::SharedSession;
use crate::solver_cache::run_n1_cached_shared;
use gm_agents::{Field, FnTool, Schema, ToolError, ToolSpec, VirtualClock};
use gm_contingency::{
    evaluate_outage, run_gen_n1, solve_base, CaOptions, ContingencyReport, Outage, RankingStrategy,
};
use gm_network::BranchKind;
use gm_numeric::Complex;
use serde_json::{json, Value};

fn strategy_from_str(s: Option<&str>) -> RankingStrategy {
    match s {
        Some("overload_first") => RankingStrategy::OverloadFirst,
        Some("voltage_first") => RankingStrategy::VoltageFirst,
        _ => RankingStrategy::Composite,
    }
}

/// JSON summary of a contingency report, with the top-`k` ranking
/// expanded (default 10).
pub fn report_to_json(rep: &ContingencyReport, k: usize) -> Value {
    let ranking: Vec<Value> = rep
        .ranking
        .iter()
        .take(k)
        .map(|r| {
            let o = &rep.outcomes[r.outcome_index];
            json!({
                "rank": r.rank,
                "label": r.label,
                "score": r.score,
                "justification": r.justification,
                "max_loading_pct": o.max_loading_pct,
                "min_voltage_pu": o.min_vm.0,
                "min_voltage_bus": o.min_vm.1,
                "n_thermal": o.n_thermal(),
                "n_voltage": o.n_voltage(),
                "islands": o.islands,
                "load_shed_mw": o.load_shed_mw,
            })
        })
        .collect();
    json!({
        "case_name": rep.case_name,
        "n_contingencies": rep.n_contingencies,
        "n_lines": rep.n_lines,
        "n_trafos": rep.n_trafos,
        "total_violations": rep.total_violations,
        "outages_with_overloads": rep.outages_with_overloads,
        "outages_with_voltage_issues": rep.outages_with_voltage_issues,
        "max_overload_pct": rep.max_overload_pct.0,
        "voltage_band": [rep.voltage_band.0, rep.voltage_band.1],
        "sweep_time_s": rep.sweep_time_s,
        // The sweep's fidelity is part of the answer: a cascade or
        // screened report says how many outages were classified from the
        // DC estimate alone versus AC-verified.
        "mode": rep.mode.as_str(),
        "screened_out": rep.screened_out,
        "ac_verified": rep.ac_verified,
        "ranking": ranking,
    })
}

/// `solve_base_case` — solve the pre-contingency power flow.
pub fn solve_base_case_tool(session: SharedSession, clock: VirtualClock) -> FnTool {
    FnTool::new(
        ToolSpec {
            name: "solve_base_case".into(),
            description: "Solve the base-case AC power flow for the active case (loading a case first if named), as the reference point for contingency analysis.".into(),
            input: Schema::object(vec![Field::optional(
                "case_name",
                Schema::string(),
                "case to load when none is active",
            )]),
            output: Schema::Object {
                fields: vec![
                    Field::required("converged", Schema::Bool, "power flow convergence"),
                    Field::required("losses_mw", Schema::number(), "network losses"),
                    Field::required("min_voltage_pu", Schema::number(), "lowest voltage"),
                ],
                closed: false,
            },
        },
        move |args| {
            if let Some(name) = args.get("case_name").and_then(|v| v.as_str()) {
                session.load_case(name).map_err(|e| ToolError::Execution {
                    message: e.to_string(),
                    recoverable: false,
                })?;
            }
            let net = session.current_network().map_err(|e| ToolError::Execution {
                message: e.to_string(),
                recoverable: false,
            })?;
            let opts = CaOptions::default();
            let (rep, degraded) = solve_base_recovered(session.solver_cache.as_ref(), &net, &opts)
                .map_err(|e| ToolError::Execution {
                    message: e.to_string(),
                    recoverable: true,
                })?;
            session.put_base_pf(rep.clone(), clock.now());
            let mut out = json!({
                "converged": rep.converged,
                "iterations": rep.iterations,
                "losses_mw": rep.losses_mw,
                "min_voltage_pu": rep.min_vm.0,
                "min_voltage_bus": rep.min_vm.1,
                "max_voltage_pu": rep.max_vm.0,
                "max_loading_pct": rep.max_loading.0,
                "total_load_mw": net.total_load_mw(),
                "network_summary": serde_json::to_value(net.summary()).unwrap(),
            });
            if let Some(c) = degraded {
                out["degraded_caveat"] = json!(c);
            }
            Ok(out)
        },
    )
}

/// `run_n1_contingency_analysis` — the full T-1 sweep.
pub fn run_n1_tool(session: SharedSession, clock: VirtualClock) -> FnTool {
    FnTool::new(
        ToolSpec {
            name: "run_n1_contingency_analysis".into(),
            description: "Run the comprehensive N-1 contingency sweep over all lines and transformers of the active case, returning violation statistics and the ranked critical elements.".into(),
            input: Schema::object(vec![
                Field::optional(
                    "strategy",
                    Schema::string_enum(&["composite", "overload_first", "voltage_first"]),
                    "criticality ranking strategy",
                ),
                Field::optional(
                    "top_k",
                    Schema::Integer { min: Some(1), max: Some(50) },
                    "ranking entries to include (default 10)",
                ),
                Field::optional(
                    "mode",
                    Schema::string_enum(&["cascade", "full", "screened"]),
                    "cascade (default): DC screening with compensated AC verification of suspects; full: brute AC sweep of every outage; screened: pure-DC fast mode",
                ),
            ]),
            output: Schema::Object {
                fields: vec![
                    Field::required("n_contingencies", Schema::integer(), "outages analyzed"),
                    Field::required("total_violations", Schema::integer(), "violation count"),
                    Field::required("max_overload_pct", Schema::number(), "worst loading"),
                    Field::required("ranking", Schema::array(Schema::Any), "critical elements"),
                ],
                closed: false,
            },
        },
        move |args| {
            let strategy = strategy_from_str(args.get("strategy").and_then(|v| v.as_str()));
            let top_k = args
                .get("top_k")
                .and_then(|v| v.as_u64())
                .unwrap_or(10) as usize;
            let net = session.current_network().map_err(|e| ToolError::Execution {
                message: e.to_string(),
                recoverable: false,
            })?;
            let mode = match args.get("mode").and_then(|v| v.as_str()) {
                Some("full") | Some("brute") => gm_contingency::SweepMode::Brute,
                Some("screened") => gm_contingency::SweepMode::Screened,
                _ => gm_contingency::SweepMode::Cascade,
            };
            let opts = CaOptions {
                strategy,
                mode,
                ..Default::default()
            };
            let base = session.fresh_base_pf();
            let diff_hash = session.diff_hash();
            // An injected `pf.base` fault imitates the sweep's own base
            // solve diverging (the session warm start is bypassed too).
            let primary = match gm_faults::inject("pf.base") {
                Some(gm_faults::FaultKind::NewtonDiverge | gm_faults::FaultKind::LuSingular) => {
                    Err(gm_powerflow::PfError::Diverged {
                        iterations: 0,
                        mismatch_pu: f64::INFINITY,
                    })
                }
                _ => run_n1_cached_shared(
                    session.solver_cache.as_ref(),
                    &net,
                    &opts,
                    base.as_ref(),
                    Some((&session.cache, diff_hash)),
                ),
            };
            let (rep, degraded) = match primary {
                Ok(rep) => (rep, None),
                Err(
                    e @ (gm_powerflow::PfError::Diverged { .. }
                    | gm_powerflow::PfError::SingularJacobian { .. }),
                ) => {
                    // Recovery: rebuild the base case down the ladder and
                    // sweep from it. The degraded sweep bypasses both the
                    // shared solver cache and the per-outage session cache
                    // so approximate outcomes can never be recalled as
                    // exact ones.
                    gm_telemetry::counter_add("recovery.attempts", 1);
                    let (rbase, cav) = crate::recovery::pf_ladder(&net, &opts.pf, &e.to_string())
                        .ok_or_else(|| ToolError::Execution {
                        message: format!("base case power flow failed: {e}"),
                        recoverable: true,
                    })?;
                    let rep = run_n1_cached_shared(None, &net, &opts, Some(&rbase), None)
                        .map_err(|e| ToolError::Execution {
                            message: format!("base case power flow failed: {e}"),
                            recoverable: true,
                        })?;
                    (rep, Some(cav))
                }
                Err(e) => {
                    return Err(ToolError::Execution {
                        message: format!("base case power flow failed: {e}"),
                        recoverable: true,
                    })
                }
            };
            session.put_contingency(rep.clone(), clock.now());
            let mut out = report_to_json(&rep, top_k);
            if let Some(c) = degraded {
                out["degraded_caveat"] = json!(c);
            }
            Ok(out)
        },
    )
}

/// `analyze_specific_contingency` — one element in detail.
pub fn analyze_specific_tool(session: SharedSession, _clock: VirtualClock) -> FnTool {
    FnTool::new(
        ToolSpec {
            name: "analyze_specific_contingency".into(),
            description: "Analyze the outage of one named element (e.g. line 171 or trafo 0) in detail: convergence, violations, worst loading and voltage.".into(),
            input: Schema::object(vec![
                Field::required(
                    "element",
                    Schema::string_enum(&["line", "trafo"]),
                    "element kind",
                ),
                Field::required(
                    "index",
                    Schema::Integer { min: Some(0), max: None },
                    "kind-relative element index",
                ),
            ]),
            output: Schema::Object {
                fields: vec![
                    Field::required("label", Schema::string(), "element label"),
                    Field::required("converged", Schema::Bool, "post-outage convergence"),
                ],
                closed: false,
            },
        },
        move |args| {
            let element = args["element"].as_str().unwrap();
            let index = args["index"].as_u64().unwrap() as usize;
            let net = session.current_network().map_err(|e| ToolError::Execution {
                message: e.to_string(),
                recoverable: false,
            })?;
            // Resolve the kind-relative index to a branch index.
            let want_kind = if element == "line" {
                BranchKind::Line
            } else {
                BranchKind::Transformer
            };
            let branch = net
                .branches
                .iter()
                .enumerate()
                .filter(|(_, b)| b.kind == want_kind)
                .nth(index)
                .map(|(bi, _)| bi)
                .ok_or_else(|| ToolError::Execution {
                    message: format!("{element} {index} does not exist in {}", net.name),
                    recoverable: false,
                })?;
            let opts = CaOptions::default();
            // Warm start from the fresh base solution when available.
            let v0: Vec<Complex> = match session.fresh_base_pf() {
                Some(rep) => rep
                    .buses
                    .iter()
                    .map(|b| Complex::from_polar(b.vm_pu, b.va_deg.to_radians()))
                    .collect(),
                None => {
                    let rep = solve_base(&net, &opts).map_err(|e| ToolError::Execution {
                        message: e.to_string(),
                        recoverable: true,
                    })?;
                    rep.buses
                        .iter()
                        .map(|b| Complex::from_polar(b.vm_pu, b.va_deg.to_radians()))
                        .collect()
                }
            };
            let outage = Outage {
                branch,
                kind: want_kind,
            };
            let o = evaluate_outage(&net, &opts, &v0, outage, index);
            let violations: Vec<Value> = o
                .violations
                .iter()
                .map(|v| serde_json::to_value(v).unwrap())
                .collect();
            Ok(json!({
                "label": outage.label(index),
                "branch_index": branch,
                "converged": o.converged,
                "islands": o.islands,
                "stranded_buses": o.stranded_buses,
                "load_shed_mw": o.load_shed_mw,
                "max_loading_pct": o.max_loading_pct,
                "min_voltage_pu": o.min_vm.0,
                "min_voltage_bus": o.min_vm.1,
                "n_violations": o.violations.len(),
                "violations": violations,
            }))
        },
    )
}

/// `run_generator_contingency_analysis` — unit (T-1) outage sweep.
///
/// Registered beyond the paper's original four CA tools (§3.1: tools can
/// be added "without refactoring core logic"): the paper defines T-1 over
/// "system assets", and generating units are assets too.
pub fn run_gen_n1_tool(session: SharedSession, _clock: VirtualClock) -> FnTool {
    FnTool::new(
        ToolSpec {
            name: "run_generator_contingency_analysis".into(),
            description: "Simulate the outage of every in-service generating unit of the active case: slack pickup, violations, and the units whose loss stresses the system most.".into(),
            input: Schema::object(vec![Field::optional(
                "top_k",
                Schema::Integer { min: Some(1), max: Some(20) },
                "entries to report (default 5)",
            )]),
            output: Schema::Object {
                fields: vec![
                    Field::required("n_units", Schema::integer(), "units analyzed"),
                    Field::required("ranking", Schema::array(Schema::Any), "most critical units"),
                ],
                closed: false,
            },
        },
        move |args| {
            let top_k = args.get("top_k").and_then(|v| v.as_u64()).unwrap_or(5) as usize;
            let net = session.current_network().map_err(|e| ToolError::Execution {
                message: e.to_string(),
                recoverable: false,
            })?;
            let base = session.fresh_base_pf();
            let outcomes = run_gen_n1(&net, &CaOptions::default(), base.as_ref()).map_err(
                |e| ToolError::Execution {
                    message: format!("base case power flow failed: {e}"),
                    recoverable: true,
                },
            )?;
            // Rank: reference loss > non-convergence > violations > lost MW.
            let mut scored: Vec<(f64, &gm_contingency::GenOutageOutcome)> = outcomes
                .iter()
                .map(|o| {
                    let s = if o.loses_reference {
                        10_000.0 + o.lost_mw
                    } else if !o.converged {
                        9_000.0 + o.lost_mw
                    } else {
                        50.0 * o.violations.len() as f64 + o.lost_mw
                    };
                    (s, o)
                })
                .collect();
            scored.sort_by(|a, b| b.0.total_cmp(&a.0));
            let ranking: Vec<Value> = scored
                .iter()
                .take(top_k)
                .map(|(score, o)| {
                    json!({
                        "gen": o.gen,
                        "bus_id": o.bus_id,
                        "lost_mw": o.lost_mw,
                        "score": score,
                        "converged": o.converged,
                        "loses_reference": o.loses_reference,
                        "n_violations": o.violations.len(),
                        "slack_pickup_mw": o.slack_pickup_mw,
                        "min_voltage_pu": o.min_vm.0,
                    })
                })
                .collect();
            Ok(json!({
                "n_units": outcomes.len(),
                "units_not_converged": outcomes.iter().filter(|o| !o.converged).count(),
                "units_with_violations": outcomes.iter().filter(|o| !o.violations.is_empty()).count(),
                "ranking": ranking,
            }))
        },
    )
}

/// `get_contingency_status` — cached analysis state.
pub fn get_contingency_status_tool(session: SharedSession, _clock: VirtualClock) -> FnTool {
    FnTool::new(
        ToolSpec {
            name: "get_contingency_status".into(),
            description: "Report whether a fresh contingency analysis exists for the current network state, and summarize it.".into(),
            input: Schema::object(vec![]),
            output: Schema::Object {
                fields: vec![Field::required(
                    "has_analysis",
                    Schema::Bool,
                    "fresh analysis available",
                )],
                closed: false,
            },
        },
        move |_args| match session.fresh_contingency() {
            Some(rep) => {
                let mut out = report_to_json(&rep, 5);
                out["has_analysis"] = json!(true);
                Ok(out)
            }
            None => Ok(json!({
                "has_analysis": false,
                "message": "no fresh contingency analysis for the current network state",
            })),
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::SessionContext;
    use gm_agents::ToolRegistry;

    fn registry() -> (SharedSession, ToolRegistry) {
        let session = SessionContext::new();
        let clock = VirtualClock::new();
        let mut reg = ToolRegistry::new(clock.clone());
        reg.register(solve_base_case_tool(session.clone(), clock.clone()));
        reg.register(run_n1_tool(session.clone(), clock.clone()));
        reg.register(analyze_specific_tool(session.clone(), clock.clone()));
        reg.register(get_contingency_status_tool(session.clone(), clock));
        (session, reg)
    }

    #[test]
    fn base_case_then_sweep() {
        let (session, reg) = registry();
        let base = reg
            .invoke("solve_base_case", &json!({"case_name": "case14"}))
            .unwrap();
        assert_eq!(base["converged"], json!(true));
        assert!(session.fresh_base_pf().is_some());
        let rep = reg
            .invoke("run_n1_contingency_analysis", &json!({}))
            .unwrap();
        assert_eq!(rep["n_contingencies"], json!(20));
        assert!(rep["ranking"].as_array().unwrap().len() <= 10);
        assert!(session.fresh_contingency().is_some());
    }

    #[test]
    fn strategy_changes_ranking() {
        let (_s, reg) = registry();
        reg.invoke("solve_base_case", &json!({"case_name": "case118"}))
            .unwrap();
        let comp = reg
            .invoke(
                "run_n1_contingency_analysis",
                &json!({"strategy": "composite", "top_k": 5}),
            )
            .unwrap();
        let over = reg
            .invoke(
                "run_n1_contingency_analysis",
                &json!({"strategy": "overload_first", "top_k": 5}),
            )
            .unwrap();
        let labels = |v: &Value| -> Vec<String> {
            v["ranking"]
                .as_array()
                .unwrap()
                .iter()
                .map(|r| r["label"].as_str().unwrap().to_string())
                .collect()
        };
        // Different strategies produce (at least partly) different top-5s
        // or orders.
        assert_ne!(labels(&comp), labels(&over));
    }

    #[test]
    fn specific_contingency_detail() {
        let (_s, reg) = registry();
        reg.invoke("solve_base_case", &json!({"case_name": "case14"}))
            .unwrap();
        let out = reg
            .invoke(
                "analyze_specific_contingency",
                &json!({"element": "trafo", "index": 0}),
            )
            .unwrap();
        assert_eq!(out["label"], json!("trafo 0"));
        assert!(out["converged"].as_bool().unwrap() || out["islands"].as_bool().unwrap());
    }

    #[test]
    fn nonexistent_element_rejected() {
        let (_s, reg) = registry();
        reg.invoke("solve_base_case", &json!({"case_name": "case14"}))
            .unwrap();
        let err = reg
            .invoke(
                "analyze_specific_contingency",
                &json!({"element": "trafo", "index": 99}),
            )
            .unwrap_err();
        assert!(err.to_string().contains("does not exist"));
    }

    #[test]
    fn status_reflects_freshness() {
        let (session, reg) = registry();
        reg.invoke("solve_base_case", &json!({"case_name": "case14"}))
            .unwrap();
        let st = reg.invoke("get_contingency_status", &json!({})).unwrap();
        assert_eq!(st["has_analysis"], json!(false));
        reg.invoke("run_n1_contingency_analysis", &json!({}))
            .unwrap();
        let st = reg.invoke("get_contingency_status", &json!({})).unwrap();
        assert_eq!(st["has_analysis"], json!(true));
        // A modification stales the analysis.
        session
            .apply(gm_network::Modification::ScaleAllLoads { factor: 1.05 })
            .unwrap();
        let st = reg.invoke("get_contingency_status", &json!({})).unwrap();
        assert_eq!(st["has_analysis"], json!(false));
    }

    #[test]
    fn sweep_without_case_fails_recoverably() {
        let (_s, reg) = registry();
        let err = reg
            .invoke("run_n1_contingency_analysis", &json!({}))
            .unwrap_err();
        assert!(err.to_string().contains("no case loaded"));
    }
}
