//! Minimal conversational CLI front end (paper §3.1 / Appendix D.1).
//!
//! The interface is deliberately a thin front door: read a line, hand it
//! to [`GridMind::ask`], print the narrated reply with timing/token
//! telemetry. Used by the `repl` example binary.

use crate::coordinator::GridMind;
use gm_agents::AgentResponse;
use std::io::{BufRead, Write};

/// Renders an agent turn in the paper's Appendix D trace format:
/// numbered reasoning steps annotated with their evidence source
/// (`-> reasoning`, `-> function tools`, `-> response`).
pub fn render_trace(resp: &AgentResponse) -> String {
    let mut out = String::new();
    let mut step = 1usize;
    for r in &resp.reasoning {
        out.push_str(&format!(
            "  {step}. {r} -> reasoning
"
        ));
        step += 1;
    }
    for c in &resp.tool_calls {
        let status = if c.ok {
            "ok".to_string()
        } else {
            format!("error: {}", c.error.as_deref().unwrap_or("?"))
        };
        out.push_str(&format!(
            "  {step}. (invoke {}) -> function tools [{status}]
",
            c.tool
        ));
        step += 1;
    }
    for (tool, issue) in &resp.validation {
        out.push_str(&format!(
            "  {step}. (validate {tool}: {}) -> function tools
",
            issue.message
        ));
        step += 1;
    }
    out.push_str(&format!(
        "  {step}. (narrate findings) -> response
"
    ));
    out
}

/// Runs a read-eval-print loop over the given streams until EOF or an
/// `exit` / `quit` line. Returns the number of handled requests.
pub fn run_repl(
    gm: &mut GridMind,
    input: &mut dyn BufRead,
    output: &mut dyn Write,
) -> std::io::Result<usize> {
    let mut handled = 0usize;
    writeln!(
        output,
        "GridMind ({} backend). Ask about IEEE cases — e.g. \"solve 118\" or \"what are the most critical contingencies\". Type 'exit' to leave.",
        gm.profile().name
    )?;
    let mut line = String::new();
    loop {
        write!(output, "\nYou: ")?;
        output.flush()?;
        line.clear();
        if input.read_line(&mut line)? == 0 {
            break;
        }
        let request = line.trim();
        if request.is_empty() {
            continue;
        }
        if request.eq_ignore_ascii_case("exit") || request.eq_ignore_ascii_case("quit") {
            break;
        }
        let reply = gm.ask(request);
        for resp in &reply.responses {
            write!(output, "\n{}", render_trace(resp))?;
        }
        writeln!(output, "\n{}", reply.text)?;
        writeln!(
            output,
            "\n  [virtual latency {:.1}s | {} tokens | {} step(s)]",
            reply.elapsed_s,
            reply.tokens.total(),
            reply.steps.len()
        )?;
        handled += 1;
    }
    Ok(handled)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gm_agents::ModelProfile;

    #[test]
    fn trace_renders_failures_and_validation() {
        use gm_agents::{Severity, TokenUsage, TurnToolCall, ValidationIssue};
        let resp = AgentResponse {
            text: "done".into(),
            reasoning: vec!["(understand)".into()],
            tool_calls: vec![TurnToolCall {
                tool: "solve_acopf_case".into(),
                ok: false,
                error: Some("solver diverged".into()),
            }],
            validation: vec![(
                "solve_acopf_case".into(),
                ValidationIssue {
                    severity: Severity::Warning,
                    check: "power_balance".into(),
                    message: "mismatch 374 MW".into(),
                },
            )],
            elapsed_s: 1.0,
            tokens: TokenUsage::default(),
            rounds: 2,
            completed: true,
        };
        let t = render_trace(&resp);
        assert!(t.contains("1. (understand) -> reasoning"));
        assert!(t.contains("error: solver diverged"));
        assert!(t.contains("mismatch 374 MW"));
        assert!(t.trim_end().ends_with("-> response"));
    }

    #[test]
    fn scripted_session() {
        let mut gm = GridMind::new(ModelProfile::by_name("GPT-o4 Mini").unwrap());
        let script = b"solve case14\nexit\n";
        let mut input: &[u8] = script;
        let mut output = Vec::new();
        let handled = run_repl(&mut gm, &mut input, &mut output).unwrap();
        assert_eq!(handled, 1);
        let text = String::from_utf8(output).unwrap();
        assert!(text.contains("Solved ACOPF"));
        assert!(text.contains("virtual latency"));
        // Appendix D trace format.
        assert!(text.contains("-> reasoning"), "{text}");
        assert!(
            text.contains("(invoke solve_acopf_case) -> function tools"),
            "{text}"
        );
        assert!(text.contains("-> response"));
    }

    #[test]
    fn eof_terminates() {
        let mut gm = GridMind::new(ModelProfile::by_name("GPT-o4 Mini").unwrap());
        let mut input: &[u8] = b"";
        let mut output = Vec::new();
        let handled = run_repl(&mut gm, &mut input, &mut output).unwrap();
        assert_eq!(handled, 0);
    }
}
