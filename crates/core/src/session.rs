//! Shared, versioned session state (§3.4 "Cross-Agent Context
//! Management").
//!
//! All agents collaborate through one [`SessionContext`]: the active
//! network plus incremental diffs, validated numerical artifacts (latest
//! ACOPF solution, base power flow, contingency report), the per-outage
//! cache, and provenance. Freshness is tracked by the diff-log hash: an
//! artifact deposited at hash `h` is reusable only while the log still
//! hashes to `h`.

use gm_acopf::AcopfSolution;
use gm_contingency::{ContingencyCache, ContingencyReport};
use gm_network::{cases, DiffLog, Modification, Network};
use gm_powerflow::PfReport;
use parking_lot::RwLock;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// An artifact stamped with the diff hash it was computed at.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Stamped<T> {
    /// The artifact.
    pub value: T,
    /// Diff-log hash at computation time.
    pub diff_hash: u64,
    /// Virtual timestamp (seconds) at computation time.
    pub at_s: f64,
}

/// The shared session.
#[derive(Debug, Default)]
pub struct SessionContext {
    inner: RwLock<SessionState>,
    /// Per-outage contingency cache (keyed by case + outage + diff hash).
    pub cache: ContingencyCache,
    /// Session-scoped telemetry: every tool call, solver iteration, and
    /// routing decision of this session lands here, and [`SessionContext::save`]
    /// embeds the snapshot so saved sessions carry their own trace.
    pub telemetry: gm_telemetry::Registry,
    /// Cross-session solver result cache, injected by gm-serve. `None`
    /// for standalone sessions — every solve then runs the solver.
    pub solver_cache: Option<crate::solver_cache::SharedSolverCache>,
}

/// Serializable core of the session.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct SessionState {
    /// Canonical name of the active case ("case118").
    pub active_case: Option<String>,
    /// Pristine base network of the active case.
    pub base: Option<Network>,
    /// Network with all modifications applied.
    pub current: Option<Network>,
    /// Chronological modification log.
    pub diffs: DiffLog,
    /// Latest ACOPF solution (stamped).
    pub acopf: Option<Stamped<AcopfSolution>>,
    /// Latest base power flow (stamped).
    pub base_pf: Option<Stamped<PfReport>>,
    /// Latest contingency report (stamped).
    pub contingency: Option<Stamped<ContingencyReport>>,
}

/// Shared handle used by tools and the coordinator.
pub type SharedSession = Arc<SessionContext>;

/// Session-level errors.
#[derive(Clone, Debug, PartialEq)]
pub enum SessionError {
    /// No case has been loaded yet.
    NoActiveCase,
    /// The requested case could not be identified.
    UnknownCase(String),
    /// A modification failed.
    BadModification(String),
}

impl std::fmt::Display for SessionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SessionError::NoActiveCase => {
                write!(f, "no case loaded; ask to solve a case first")
            }
            SessionError::UnknownCase(c) => write!(f, "unknown case {c:?}"),
            SessionError::BadModification(m) => write!(f, "modification failed: {m}"),
        }
    }
}

impl std::error::Error for SessionError {}

impl SessionContext {
    /// Fresh empty session.
    pub fn new() -> SharedSession {
        Arc::new(SessionContext::default())
    }

    /// Fresh session wired to a shared cross-session solver cache: tool
    /// invocations consult the cache before running a solver, and
    /// deposit their results into it afterwards.
    pub fn new_with_solver_cache(cache: crate::solver_cache::SharedSolverCache) -> SharedSession {
        Arc::new(SessionContext {
            solver_cache: Some(cache),
            ..Default::default()
        })
    }

    /// Loads (or switches to) a case by fuzzy name, returning the
    /// canonical network and the identification confidence. Resets diffs
    /// and stale artifacts when the case changes.
    pub fn load_case(&self, name: &str) -> Result<(Network, f64), SessionError> {
        let (net, confidence) =
            cases::load_case(name).map_err(|e| SessionError::UnknownCase(e.input))?;
        let mut s = self.inner.write();
        let canonical = gm_network::identify_case(name)
            .map(|(id, _)| id.short_name().to_string())
            .unwrap_or_else(|| name.to_string());
        if s.active_case.as_deref() != Some(canonical.as_str()) {
            self.cache.invalidate_case(&net.name);
            *s = SessionState {
                active_case: Some(canonical),
                base: Some(net.clone()),
                current: Some(net.clone()),
                ..Default::default()
            };
        }
        Ok((s.current.clone().expect("just set"), confidence))
    }

    /// The current (modified) network.
    pub fn current_network(&self) -> Result<Network, SessionError> {
        self.inner
            .read()
            .current
            .clone()
            .ok_or(SessionError::NoActiveCase)
    }

    /// Canonical active case name.
    pub fn active_case(&self) -> Option<String> {
        self.inner.read().active_case.clone()
    }

    /// Applies and records a modification (invalidates nothing by itself:
    /// freshness is hash-based).
    pub fn apply(&self, m: Modification) -> Result<(), SessionError> {
        let mut s = self.inner.write();
        let mut net = match &s.current {
            Some(n) => n.clone(),
            None => return Err(SessionError::NoActiveCase),
        };
        s.diffs
            .apply(&mut net, m)
            .map_err(|e| SessionError::BadModification(e.to_string()))?;
        s.current = Some(net);
        Ok(())
    }

    /// Current diff-log hash (the freshness stamp).
    pub fn diff_hash(&self) -> u64 {
        self.inner.read().diffs.hash()
    }

    /// Number of recorded modifications.
    pub fn diff_count(&self) -> usize {
        self.inner.read().diffs.len()
    }

    /// Human-readable diff descriptions, chronological.
    pub fn diff_descriptions(&self) -> Vec<String> {
        self.inner
            .read()
            .diffs
            .entries()
            .iter()
            .map(|m| m.describe())
            .collect()
    }

    /// Deposits a solved ACOPF (stamped at the current hash).
    pub fn put_acopf(&self, sol: AcopfSolution, at_s: f64) {
        let hash = self.diff_hash();
        self.inner.write().acopf = Some(Stamped {
            value: sol,
            diff_hash: hash,
            at_s,
        });
    }

    /// The latest ACOPF solution *if still fresh* (computed at the
    /// current diff hash).
    pub fn fresh_acopf(&self) -> Option<AcopfSolution> {
        let s = self.inner.read();
        let hash = s.diffs.hash();
        let found = s
            .acopf
            .as_ref()
            .filter(|st| st.diff_hash == hash)
            .map(|st| st.value.clone());
        Self::count_freshness("acopf", found.is_some(), s.acopf.is_some());
        found
    }

    /// The latest ACOPF solution regardless of freshness, with staleness
    /// flag.
    pub fn any_acopf(&self) -> Option<(AcopfSolution, bool)> {
        let s = self.inner.read();
        let hash = s.diffs.hash();
        s.acopf
            .as_ref()
            .map(|st| (st.value.clone(), st.diff_hash != hash))
    }

    /// Deposits a base power flow report.
    pub fn put_base_pf(&self, rep: PfReport, at_s: f64) {
        let hash = self.diff_hash();
        self.inner.write().base_pf = Some(Stamped {
            value: rep,
            diff_hash: hash,
            at_s,
        });
    }

    /// Fresh base power flow, if any.
    pub fn fresh_base_pf(&self) -> Option<PfReport> {
        let s = self.inner.read();
        let hash = s.diffs.hash();
        let found = s
            .base_pf
            .as_ref()
            .filter(|st| st.diff_hash == hash)
            .map(|st| st.value.clone());
        Self::count_freshness("base_pf", found.is_some(), s.base_pf.is_some());
        found
    }

    /// Deposits a contingency report.
    pub fn put_contingency(&self, rep: ContingencyReport, at_s: f64) {
        let hash = self.diff_hash();
        self.inner.write().contingency = Some(Stamped {
            value: rep,
            diff_hash: hash,
            at_s,
        });
    }

    /// Fresh contingency report, if any.
    pub fn fresh_contingency(&self) -> Option<ContingencyReport> {
        let s = self.inner.read();
        let hash = s.diffs.hash();
        let found = s
            .contingency
            .as_ref()
            .filter(|st| st.diff_hash == hash)
            .map(|st| st.value.clone());
        Self::count_freshness("contingency", found.is_some(), s.contingency.is_some());
        found
    }

    /// Counts artifact freshness outcomes: `fresh` (reused), `stale`
    /// (present but computed at an older diff hash), or `absent`.
    fn count_freshness(artifact: &str, fresh: bool, present: bool) {
        let outcome = if fresh {
            "fresh"
        } else if present {
            "stale"
        } else {
            "absent"
        };
        gm_telemetry::counter_add(&format!("session.{artifact}.{outcome}"), 1);
    }

    /// Serializes the session for persistence (§3.4 "Session persistence
    /// serializes baseline, diffs, artifacts…").
    pub fn save(&self) -> serde_json::Value {
        let mut blob = serde_json::to_value(&*self.inner.read()).expect("session serializes");
        // Saved sessions carry their own trace: the full telemetry
        // snapshot (spans, counters, events) rides along under a key the
        // restore path ignores, replayable with `gm-trace <file>`.
        blob["telemetry"] = self.telemetry.export();
        blob
    }

    /// Restores a persisted session. The embedded `"telemetry"` snapshot
    /// (if any) is informational — the restored session starts a fresh
    /// registry.
    pub fn restore(blob: &serde_json::Value) -> Result<SharedSession, serde_json::Error> {
        let state: SessionState = serde_json::from_value(blob.clone())?;
        Ok(Arc::new(SessionContext {
            inner: RwLock::new(state),
            cache: ContingencyCache::new(),
            telemetry: gm_telemetry::Registry::new(),
            solver_cache: None,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gm_acopf::{solve_acopf, AcopfOptions};

    #[test]
    fn load_and_switch_cases() {
        let s = SessionContext::new();
        let (net, conf) = s.load_case("ieee 14").unwrap();
        assert_eq!(net.n_bus(), 14);
        assert!(conf > 0.9);
        assert_eq!(s.active_case().as_deref(), Some("case14"));
        // Switching resets diffs.
        s.apply(Modification::ScaleAllLoads { factor: 1.1 })
            .unwrap();
        assert_eq!(s.diff_count(), 1);
        s.load_case("case30").unwrap();
        assert_eq!(s.diff_count(), 0);
        assert_eq!(s.active_case().as_deref(), Some("case30"));
    }

    #[test]
    fn reload_same_case_preserves_state() {
        let s = SessionContext::new();
        s.load_case("case14").unwrap();
        s.apply(Modification::ScaleAllLoads { factor: 1.2 })
            .unwrap();
        s.load_case("14").unwrap(); // same case, fuzzy name
        assert_eq!(s.diff_count(), 1, "same-case reload must not reset");
    }

    #[test]
    fn unknown_case_rejected() {
        let s = SessionContext::new();
        assert!(matches!(
            s.load_case("case9999"),
            Err(SessionError::UnknownCase(_))
        ));
        assert!(matches!(
            s.current_network(),
            Err(SessionError::NoActiveCase)
        ));
    }

    #[test]
    fn freshness_tracks_diff_hash() {
        let s = SessionContext::new();
        s.load_case("case14").unwrap();
        let net = s.current_network().unwrap();
        let sol = solve_acopf(&net, &AcopfOptions::default()).unwrap();
        s.put_acopf(sol, 1.0);
        assert!(s.fresh_acopf().is_some());
        // A modification stales the artifact…
        s.apply(Modification::SetBusLoad {
            bus_id: 10,
            p_mw: 20.0,
            q_mvar: None,
        })
        .unwrap();
        assert!(s.fresh_acopf().is_none());
        // …but it is still retrievable as stale.
        let (stale, is_stale) = s.any_acopf().unwrap();
        assert!(is_stale);
        assert!(stale.solved);
    }

    #[test]
    fn modifications_accumulate_on_current() {
        let s = SessionContext::new();
        s.load_case("case14").unwrap();
        let before = s.current_network().unwrap().total_load_mw();
        s.apply(Modification::SetBusLoad {
            bus_id: 10,
            p_mw: 50.0,
            q_mvar: None,
        })
        .unwrap();
        let after = s.current_network().unwrap().total_load_mw();
        assert!((after - before - 41.0).abs() < 1e-9); // 9 MW → 50 MW
        assert_eq!(s.diff_descriptions(), vec!["set load at bus 10 to 50 MW"]);
    }

    #[test]
    fn bad_modification_not_recorded() {
        let s = SessionContext::new();
        s.load_case("case14").unwrap();
        let err = s
            .apply(Modification::SetBusLoad {
                bus_id: 999,
                p_mw: 1.0,
                q_mvar: None,
            })
            .unwrap_err();
        assert!(matches!(err, SessionError::BadModification(_)));
        assert_eq!(s.diff_count(), 0);
    }

    #[test]
    fn save_embeds_telemetry_and_restore_ignores_it() {
        let s = SessionContext::new();
        s.load_case("case14").unwrap();
        {
            let _g = s.telemetry.install();
            gm_telemetry::counter_add("pf.newton.solves", 3);
        }
        let blob = s.save();
        assert_eq!(
            blob["telemetry"]["counters"]["pf.newton.solves"].as_u64(),
            Some(3)
        );
        let restored = SessionContext::restore(&blob).unwrap();
        assert_eq!(restored.active_case().as_deref(), Some("case14"));
        // The restored session starts a fresh trace.
        assert_eq!(restored.telemetry.counter_value("pf.newton.solves"), 0);
    }

    #[test]
    fn freshness_counters_track_artifact_outcomes() {
        let s = SessionContext::new();
        s.load_case("case14").unwrap();
        let _g = s.telemetry.install();
        assert!(s.fresh_base_pf().is_none()); // absent
        let net = s.current_network().unwrap();
        let rep = gm_powerflow::solve(&net, &gm_powerflow::PfOptions::default()).unwrap();
        s.put_base_pf(rep, 1.0);
        assert!(s.fresh_base_pf().is_some()); // fresh
        s.apply(Modification::ScaleAllLoads { factor: 1.1 })
            .unwrap();
        assert!(s.fresh_base_pf().is_none()); // stale
        assert_eq!(s.telemetry.counter_value("session.base_pf.absent"), 1);
        assert_eq!(s.telemetry.counter_value("session.base_pf.fresh"), 1);
        assert_eq!(s.telemetry.counter_value("session.base_pf.stale"), 1);
    }

    #[test]
    fn session_persistence_round_trip() {
        let s = SessionContext::new();
        s.load_case("case30").unwrap();
        s.apply(Modification::ScaleAllLoads { factor: 0.9 })
            .unwrap();
        let blob = s.save();
        let restored = SessionContext::restore(&blob).unwrap();
        assert_eq!(restored.active_case().as_deref(), Some("case30"));
        assert_eq!(restored.diff_count(), 1);
        let net = restored.current_network().unwrap();
        assert!((net.total_load_mw() - 283.4 * 0.9).abs() < 1e-6);
    }
}
