//! The `batch_study` tool: one symbolic analysis, many scenarios.
//!
//! Turns a scenario specification (a load sweep, a 24-hour profile, or
//! a per-bus ramp) into a [`gm_powerflow::ScenarioSet`], runs it through
//! the batched engine via [`crate::solver_cache::run_batch_cached`], and
//! returns one table the planner narrates: per-scenario cost and
//! violation counts plus min/max/argmax summaries.
//!
//! Failure policy mirrors the rest of the tool layer: a scenario whose
//! warm-started Newton diverges is *never* a hard error. The engine
//! itself retries from a flat start (counted in `batch.flat_restarts`),
//! and anything still failing after that is walked down the
//! [`crate::recovery`] ladder here, producing a caveated approximate row
//! instead of losing the whole study. Degraded rows are never cached —
//! `run_batch_cached` only stores all-converged reports.

use crate::recovery::{caveat, pf_ladder};
use crate::session::SharedSession;
use crate::solver_cache::run_batch_cached;
use gm_agents::{Field, FnTool, Schema, ToolError, ToolSpec, VirtualClock};
use gm_network::Network;
use gm_powerflow::{PfOptions, PfReport, ScenarioSet};
use serde_json::{json, Value};

/// Voltage band and thermal threshold used for the violation counts.
const VMIN_PU: f64 = 0.95;
const VMAX_PU: f64 = 1.05;
const OVERLOAD_PCT: f64 = 100.0;

/// Default 24-hour load shape (fraction of nominal demand, hour 0–23):
/// overnight valley, morning ramp, flat afternoon, evening peak.
const DAILY_FACTORS: [f64; 24] = [
    0.74, 0.71, 0.69, 0.68, 0.70, 0.75, 0.83, 0.91, 0.96, 0.99, 1.01, 1.02, 1.02, 1.01, 1.00, 0.99,
    1.00, 1.03, 1.06, 1.08, 1.05, 0.98, 0.89, 0.80,
];

/// Total production cost ($/h) of a solved scenario, evaluated on the
/// scenario's own network (dispatch deltas change the cost basis).
fn scenario_cost(net_k: &Network, rep: &PfReport) -> f64 {
    net_k
        .gens
        .iter()
        .zip(&rep.gens)
        .filter(|(g, _)| g.in_service)
        .map(|(g, r)| g.cost.eval(r.p_mw))
        .sum()
}

/// Violation count: buses outside the voltage band plus overloaded
/// branches.
fn scenario_violations(rep: &PfReport) -> usize {
    rep.voltage_violations(VMIN_PU, VMAX_PU).len() + rep.overloads(OVERLOAD_PCT).len()
}

fn row_json(label: &str, rep: &PfReport, cost: f64, warm: bool, flat: bool) -> Value {
    json!({
        "label": label,
        "converged": rep.converged,
        "cost_per_hour": cost,
        "violations": scenario_violations(rep),
        "max_loading_pct": rep.max_loading.0,
        "min_voltage_pu": rep.min_vm.0,
        "losses_mw": rep.losses_mw,
        "warm_started": warm,
        "flat_restarted": flat,
    })
}

/// Builds the [`ScenarioSet`] described by the tool arguments.
fn scenario_set_from_args(args: &Value, net: &Network) -> Result<ScenarioSet, ToolError> {
    let kind = args["kind"].as_str().unwrap_or("load_sweep");
    let from = args["from_percent"].as_f64().unwrap_or(80.0) / 100.0;
    let to = args["to_percent"].as_f64().unwrap_or(120.0) / 100.0;
    let steps = args["steps"].as_u64().unwrap_or(9).clamp(2, 256) as usize;
    match kind {
        "load_sweep" => Ok(ScenarioSet::load_sweep(from, to, steps)),
        "daily_profile" => Ok(ScenarioSet::daily_profile(&DAILY_FACTORS)),
        "bus_profile" => {
            let Some(bus_id) = args["bus_id"].as_u64() else {
                return Err(ToolError::Execution {
                    message: "bus_profile needs a bus_id".into(),
                    recoverable: false,
                });
            };
            let bus_id = u32::try_from(bus_id).unwrap_or(u32::MAX);
            let Some(bus_ix) = net.buses.iter().position(|b| b.id == bus_id) else {
                return Err(ToolError::Execution {
                    message: format!("bus {bus_id} not found in {}", net.name),
                    recoverable: false,
                });
            };
            let base_p: f64 = net
                .loads
                .iter()
                .filter(|l| l.bus == bus_ix && l.in_service)
                .map(|l| l.p_mw)
                .sum();
            // A bus with no load ramps from 0 up to `to_percent` of the
            // system average load instead of sweeping 0..0.
            let anchor = if base_p.abs() > 1e-9 {
                base_p
            } else {
                net.total_load_mw() / net.n_bus().max(1) as f64
            };
            let levels: Vec<f64> = (0..steps)
                .map(|i| {
                    let t = i as f64 / (steps - 1) as f64;
                    anchor * (from + t * (to - from))
                })
                .collect();
            Ok(ScenarioSet::bus_profile(bus_id, &levels))
        }
        other => Err(ToolError::Execution {
            message: format!(
                "unknown study kind '{other}' (expected load_sweep, daily_profile, or bus_profile)"
            ),
            recoverable: false,
        }),
    }
}

fn output_schema() -> Schema {
    Schema::Object {
        fields: vec![
            Field::required("case_name", Schema::string(), "case identifier"),
            Field::required("scenarios", Schema::integer(), "scenarios in the study"),
            Field::required(
                "converged_scenarios",
                Schema::integer(),
                "scenarios with a full AC answer",
            ),
            Field::required("warm_hits", Schema::integer(), "warm-started solves"),
            Field::required(
                "flat_restarts",
                Schema::integer(),
                "scenarios retried from flat start",
            ),
            Field::required(
                "rows",
                Schema::array(Schema::Object {
                    fields: vec![
                        Field::required("label", Schema::string(), "scenario label"),
                        Field::required("converged", Schema::Bool, "AC convergence flag"),
                        Field::required("cost_per_hour", Schema::number(), "production cost $/h"),
                        Field::required(
                            "violations",
                            Schema::integer(),
                            "voltage + thermal violations",
                        ),
                        Field::required("max_loading_pct", Schema::number(), "worst loading"),
                        Field::required("min_voltage_pu", Schema::number(), "lowest voltage"),
                    ],
                    closed: false,
                }),
                "per-scenario results in specification order",
            ),
        ],
        closed: false,
    }
}

/// `batch_study` — solve a whole family of operating points in one call.
pub fn batch_study_tool(session: SharedSession, _clock: VirtualClock) -> FnTool {
    FnTool::new(
        ToolSpec {
            name: "batch_study".into(),
            description: "Solve many what-if scenarios of the active case in one batched \
                          power-flow run (load sweep, 24-hour daily profile, or per-bus ramp) \
                          and return a per-scenario table of cost and violations with \
                          min/max summaries."
                .into(),
            input: Schema::object(vec![
                Field::optional(
                    "case_name",
                    Schema::string(),
                    "case to study; defaults to the session's active case",
                ),
                Field::optional(
                    "kind",
                    Schema::string_enum(&["load_sweep", "daily_profile", "bus_profile"]),
                    "scenario family (default load_sweep)",
                ),
                Field::optional(
                    "from_percent",
                    Schema::number_range(1.0, 500.0),
                    "sweep start as percent of nominal load (default 80)",
                ),
                Field::optional(
                    "to_percent",
                    Schema::number_range(1.0, 500.0),
                    "sweep end as percent of nominal load (default 120)",
                ),
                Field::optional(
                    "steps",
                    Schema::integer(),
                    "number of scenarios in a sweep (default 9)",
                ),
                Field::optional(
                    "bus_id",
                    Schema::integer(),
                    "bus to ramp when kind is bus_profile",
                ),
            ]),
            output: output_schema(),
        },
        move |args| {
            let net = match args["case_name"].as_str() {
                Some(name) if !name.is_empty() => {
                    session
                        .load_case(name)
                        .map_err(|e| ToolError::Execution {
                            message: e.to_string(),
                            recoverable: false,
                        })?
                        .0
                }
                _ => session
                    .current_network()
                    .map_err(|e| ToolError::Execution {
                        message: e.to_string(),
                        recoverable: true,
                    })?,
            };
            let set = scenario_set_from_args(args, &net)?;
            let opts = PfOptions::default();
            let batch = run_batch_cached(session.solver_cache.as_ref(), &net, &opts, &set)
                .map_err(|e| ToolError::Execution {
                    message: e.to_string(),
                    recoverable: false,
                })?;

            // Scenario networks are needed twice: to price each dispatch
            // on its own cost basis, and to rebuild a failed scenario for
            // the recovery ladder.
            let nets = set.materialize(&net).map_err(|e| ToolError::Execution {
                message: e.to_string(),
                recoverable: false,
            })?;

            let mut rows = Vec::with_capacity(batch.outcomes.len());
            let mut converged = 0usize;
            let mut caveats: Vec<String> = Vec::new();
            for (outcome, net_k) in batch.outcomes.iter().zip(&nets) {
                match &outcome.report {
                    Ok(rep) => {
                        converged += 1;
                        rows.push(row_json(
                            &outcome.label,
                            rep,
                            scenario_cost(net_k, rep),
                            outcome.warm_started,
                            outcome.flat_restarted,
                        ));
                    }
                    Err(err) => {
                        // The batch engine already burned its flat
                        // restart; descend the remaining ladder rungs
                        // for an approximate, clearly-caveated row.
                        gm_telemetry::counter_add("recovery.attempts", 1);
                        gm_telemetry::flight_event(
                            "recovery.descent",
                            format!("ladder=batch scenario={} reason={err}", outcome.label),
                        );
                        match pf_ladder(net_k, &opts, &err.to_string()) {
                            Some((rep, cav)) => {
                                let mut row = row_json(
                                    &outcome.label,
                                    &rep,
                                    scenario_cost(net_k, &rep),
                                    outcome.warm_started,
                                    outcome.flat_restarted,
                                );
                                row["degraded"] = json!(true);
                                rows.push(row);
                                caveats.push(cav);
                            }
                            None => {
                                rows.push(json!({
                                    "label": outcome.label,
                                    "converged": false,
                                    "cost_per_hour": 0.0,
                                    "violations": 0,
                                    "max_loading_pct": 0.0,
                                    "min_voltage_pu": 0.0,
                                    "error": err.to_string(),
                                }));
                                caveats.push(caveat(
                                    &format!("power flow for scenario '{}'", outcome.label),
                                    &err.to_string(),
                                    "none — every recovery rung also failed; the scenario \
                                     is reported unsolved",
                                ));
                            }
                        }
                    }
                }
            }

            // Min/max/argmax over rows that carry real numbers.
            let priced: Vec<(&str, f64, u64)> = rows
                .iter()
                .filter(|r| r["converged"].as_bool() == Some(true))
                .map(|r| {
                    (
                        r["label"].as_str().unwrap_or(""),
                        r["cost_per_hour"].as_f64().unwrap_or(0.0),
                        r["violations"].as_u64().unwrap_or(0),
                    )
                })
                .collect();
            let mut out = json!({
                "case_name": batch.case_name,
                "scenarios": batch.scenarios,
                "converged_scenarios": converged,
                "warm_hits": batch.warm_hits,
                "flat_restarts": batch.flat_restarts,
                "rows": rows,
            });
            if let Some((label, cost, _)) =
                priced.iter().min_by(|a, b| a.1.total_cmp(&b.1)).copied()
            {
                out["cheapest"] = json!({ "label": label, "cost_per_hour": cost });
            }
            if let Some((label, cost, _)) =
                priced.iter().max_by(|a, b| a.1.total_cmp(&b.1)).copied()
            {
                out["costliest"] = json!({ "label": label, "cost_per_hour": cost });
            }
            if let Some((label, _, v)) = priced.iter().max_by_key(|r| r.2).copied() {
                out["worst_violations"] = json!({ "label": label, "count": v });
            }
            if !caveats.is_empty() {
                out["degraded_caveat"] = json!(caveats.join(" "));
            }
            Ok(out)
        },
    )
}
