//! # gridmind-core
//!
//! GridMind: an LLM-powered multi-agent system for power system analysis
//! and operations — the Rust reproduction of the paper's contribution.
//!
//! The system couples a conversational agent layer with deterministic
//! engineering solvers: specialized agents for AC optimal power flow and
//! N-1 contingency analysis coordinate through a shared, versioned
//! session context, and every numerical claim in an agent's narration is
//! traceable to a validated tool invocation.
//!
//! ## Components (paper §3)
//!
//! - [`coordinator::GridMind`] — the front door: planner-agent routing,
//!   compound-request decomposition, cross-agent context management, and
//!   the instrumentation bench.
//! - [`agents`] — the ACOPF agent and the contingency analysis agent
//!   (system prompts from Figs. 4–5, tools from Appendix B.3).
//! - [`planners`] — the deterministic plan/narrate cores the simulated
//!   LLM backends delegate to.
//! - [`tools_acopf`] / [`tools_ca`] — the seven typed function tools.
//! - [`session`] — the shared versioned session state (§3.4): network +
//!   diffs, stamped artifacts, contingency cache, persistence.
//! - [`validators`] — convergence / power-balance / operating-limit
//!   checks applied to every tool result.
//! - [`quality`] — the Appendix C `SolutionQuality` 0–10 scoring.
//! - [`repl`] — a minimal conversational CLI front end.
//!
//! ## Quickstart
//!
//! ```no_run
//! use gridmind_core::{GridMind, ModelProfile};
//!
//! let mut gm = GridMind::new(ModelProfile::by_name("GPT-5").unwrap());
//! let reply = gm.ask("Solve IEEE 118 case, then run contingency analysis");
//! println!("{}", reply.text);
//! ```

pub mod agents;
pub mod coordinator;
pub mod planners;
pub mod quality;
pub mod query_kind;
pub mod recovery;
pub mod repl;
pub mod session;
pub mod solver_cache;
pub mod tools_acopf;
pub mod tools_batch;
pub mod tools_ca;
pub mod validators;

pub use agents::{build_acopf_agent, build_ca_agent, ACOPF_SYSTEM_PROMPT, CA_SYSTEM_PROMPT};
pub use coordinator::{AgentKind, CoordinatedResponse, GridMind, TurnMetric, WorkflowStep};
pub use gm_agents::ModelProfile;
pub use quality::{assess, SolutionQuality};
pub use query_kind::{classify_query_kind, QUERY_KIND_LABELS};
pub use recovery::{
    caveat, solve_acopf_recovered, solve_base_recovered, solve_scopf_recovered, CAVEAT_PREFIX,
};
pub use session::{SessionContext, SessionError, SessionState, SharedSession, Stamped};
pub use solver_cache::{
    run_batch_cached, QueryKind, SharedSolverCache, SolverCache, SolverCacheKey, SolverCacheStats,
    SolverResult,
};
