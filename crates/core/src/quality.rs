//! Solution quality assessment (Appendix C `SolutionQuality`).
//!
//! The paper's validator logs lines like "Solution quality assessment:
//! Overall=7.2/10". This module scores a solved ACOPF on four 0–10 axes —
//! convergence, constraint satisfaction, economic efficiency, and system
//! security — plus a weighted overall score and concrete recommendations.

use gm_acopf::AcopfSolution;
use gm_network::Network;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// 0–10 quality scores for a solution (Appendix C schema).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SolutionQuality {
    /// Weighted overall score.
    pub overall_score: f64,
    /// Convergence axis.
    pub convergence_quality: f64,
    /// Constraint satisfaction axis.
    pub constraint_satisfaction: f64,
    /// Economic efficiency axis (vs the unconstrained dispatch bound).
    pub economic_efficiency: f64,
    /// System security axis (voltage / thermal margins).
    pub system_security: f64,
    /// Detailed numeric evidence per axis.
    pub detailed_metrics: BTreeMap<String, f64>,
    /// Actionable recommendations.
    pub recommendations: Vec<String>,
}

/// Scores a solved ACOPF against its network.
pub fn assess(net: &Network, sol: &AcopfSolution) -> SolutionQuality {
    let mut metrics = BTreeMap::new();
    let mut recommendations = Vec::new();

    // --- Convergence: solved flag + iteration efficiency.
    let convergence_quality = if !sol.solved {
        0.0
    } else {
        let iter_penalty = (sol.iterations as f64 / 30.0).min(1.0) * 2.0;
        (10.0 - iter_penalty).clamp(0.0, 10.0)
    };
    metrics.insert("ipm_iterations".into(), sol.iterations as f64);

    // --- Constraint satisfaction: voltage band + thermal headroom +
    // power balance.
    let mut constraint = 10.0;
    let balance = sol.power_balance_error_mw().abs();
    metrics.insert("power_balance_error_mw".into(), balance);
    if balance > 1.0 {
        constraint -= (balance / 10.0).min(4.0);
        recommendations.push(format!(
            "verify the {balance:.1} MW power balance discrepancy (load scaling, shunts, or slack treatment)"
        ));
    }
    let vmin_limit: f64 = net
        .buses
        .iter()
        .map(|b| b.vmin_pu)
        .fold(f64::INFINITY, f64::min);
    let vmax_limit: f64 = net.buses.iter().map(|b| b.vmax_pu).fold(0.0, f64::max);
    if sol.min_voltage_pu < vmin_limit - 1e-6 || sol.max_voltage_pu > vmax_limit + 1e-6 {
        constraint -= 3.0;
        recommendations.push("voltage limits violated; inspect reactive support".into());
    }
    if sol.max_thermal_loading_pct > 100.0 + 1e-6 {
        constraint -= 3.0;
        recommendations.push(format!(
            "thermal overload at {:.1}%; redispatch or uprate the corridor",
            sol.max_thermal_loading_pct
        ));
    }
    metrics.insert("min_voltage_pu".into(), sol.min_voltage_pu);
    metrics.insert(
        "max_thermal_loading_pct".into(),
        sol.max_thermal_loading_pct,
    );

    // --- Economic efficiency vs the lossless dispatch lower bound.
    let ed = gm_acopf::economic_dispatch(net, net.total_load_mw());
    let gap = if ed.cost > 0.0 {
        ((sol.objective_cost - ed.cost) / ed.cost).max(0.0)
    } else {
        0.0
    };
    metrics.insert("dispatch_lower_bound_cost".into(), ed.cost);
    metrics.insert("optimality_gap_fraction".into(), gap);
    // ≤2 % above bound → 10; 20 %+ → 4.
    let economic_efficiency = (10.0 - (gap * 30.0)).clamp(4.0, 10.0);

    // --- Security: margins to the voltage band and thermal limits.
    let v_margin = (sol.min_voltage_pu - vmin_limit)
        .min(vmax_limit - sol.max_voltage_pu)
        .max(0.0);
    let t_margin = (100.0 - sol.max_thermal_loading_pct).max(0.0);
    metrics.insert("voltage_margin_pu".into(), v_margin);
    metrics.insert("thermal_margin_pct".into(), t_margin);
    let mut system_security = 4.0 + v_margin * 100.0 + t_margin / 20.0;
    system_security = system_security.clamp(0.0, 10.0);
    if t_margin < 5.0 {
        recommendations
            .push("several corridors operate near their ratings; consider N-1 screening".into());
    }

    let overall_score = (0.3 * convergence_quality
        + 0.3 * constraint
        + 0.2 * economic_efficiency
        + 0.2 * system_security)
        .clamp(0.0, 10.0);

    let rounded = (overall_score * 10.0).round() / 10.0;
    gm_telemetry::event(
        "quality",
        format!("Solution quality assessment: Overall={rounded}/10"),
    );
    gm_telemetry::histogram_record("quality.overall_score", rounded);
    SolutionQuality {
        overall_score: rounded,
        convergence_quality,
        constraint_satisfaction: constraint.clamp(0.0, 10.0),
        economic_efficiency,
        system_security,
        detailed_metrics: metrics,
        recommendations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gm_acopf::{solve_acopf, AcopfOptions};
    use gm_network::{cases, CaseId};

    #[test]
    fn good_solution_scores_high() {
        let net = cases::load(CaseId::Ieee14);
        let sol = solve_acopf(&net, &AcopfOptions::default()).unwrap();
        let q = assess(&net, &sol);
        assert!(q.overall_score >= 6.0, "overall {}", q.overall_score);
        assert!(q.convergence_quality >= 7.0);
        assert!(q.constraint_satisfaction >= 9.0);
        assert!((0.0..=10.0).contains(&q.overall_score));
        assert!(q.detailed_metrics.contains_key("optimality_gap_fraction"));
    }

    #[test]
    fn fabricated_bad_solution_scores_low() {
        let net = cases::load(CaseId::Ieee14);
        let mut sol = solve_acopf(&net, &AcopfOptions::default()).unwrap();
        sol.max_thermal_loading_pct = 140.0;
        sol.min_voltage_pu = 0.88;
        sol.total_generation_mw += 300.0; // balance error
        let q = assess(&net, &sol);
        assert!(q.constraint_satisfaction < 5.0);
        assert!(!q.recommendations.is_empty());
        assert!(q
            .recommendations
            .iter()
            .any(|r| r.contains("power balance")));
        assert!(q.overall_score < 7.0);
    }

    #[test]
    fn economic_axis_tracks_dispatch_bound() {
        let net = cases::load(CaseId::Ieee30);
        let sol = solve_acopf(&net, &AcopfOptions::default()).unwrap();
        let q = assess(&net, &sol);
        let bound = q.detailed_metrics["dispatch_lower_bound_cost"];
        assert!(bound <= sol.objective_cost + 1e-6);
        assert!(q.economic_efficiency >= 4.0);
    }

    #[test]
    fn scores_serializable() {
        let net = cases::load(CaseId::Ieee14);
        let sol = solve_acopf(&net, &AcopfOptions::default()).unwrap();
        let q = assess(&net, &sol);
        let v = serde_json::to_value(&q).unwrap();
        assert!(v["overall_score"].as_f64().unwrap() > 0.0);
    }
}
