//! Solver recovery ladder: graceful degradation for the tool boundary.
//!
//! When a primary solver call fails with a *numerical* error (Newton
//! divergence, singular factorization, IPM barrier stall), the tools do
//! not surface the raw failure to the planner. Instead they walk a fixed
//! ladder of progressively cruder but more robust methods:
//!
//! 1. **Newton, warm/cached** — the ordinary path through
//!    [`crate::solver_cache`].
//! 2. **Newton flat-start with Iwamoto damping** and a doubled iteration
//!    budget: discards a possibly poisoned warm start.
//! 3. **Fast-decoupled (XB)** without Q-limit enforcement: linearly
//!    convergent but far less start-point sensitive.
//! 4. **DC approximation** (lossless, flat voltage): always solvable on
//!    a connected network.
//!
//! Every rung is recorded as a `recovery.*` telemetry counter, and any
//! answer produced below rung 1 carries an explicit caveat string that
//! the planners must surface verbatim in the narration — a degraded
//! answer is **never** silently substituted for a converged one.
//!
//! Invariant relied on by the determinism/bench gates: when the primary
//! call succeeds (the universal case without fault injection), this
//! module adds *zero* work, *zero* counters, and returns the primary
//! result unchanged — and fallback results are never written back into
//! the shared solver cache, so a degraded answer cannot leak into later
//! sessions as a cache hit.
//!
//! Validation errors ([`PfError::InvalidNetwork`] /
//! [`AcopfError::InvalidNetwork`]) are *not* recoverable by switching
//! algorithms and pass through untouched.

use crate::solver_cache::{
    solve_acopf_cached, solve_base_cached, solve_scopf_cached, SharedSolverCache,
};
use gm_acopf::{
    solve_dcopf, AcopfError, AcopfOptions, AcopfSolution, BranchLoading, IpmOptions, ScopfOptions,
    ScopfSolution,
};
use gm_contingency::CaOptions;
use gm_network::Network;
use gm_powerflow::types::{BranchFlow, BusResult, GenResult, InitStrategy, PfError, PfOptions};
use gm_powerflow::PfReport;

/// Marker every degraded-answer caveat starts with. The planners append
/// caveat lines verbatim, and the serve-layer chaos gate greps responses
/// for this prefix to pair degraded answers with `recovery.*` counters.
pub const CAVEAT_PREFIX: &str = "CAVEAT (degraded result):";

/// Renders the caveat for an answer served by a fallback rung.
///
/// The wording contract (see DESIGN.md, fault-model appendix): the line
/// starts with [`CAVEAT_PREFIX`], names the primary method and why it
/// failed, names the fallback that produced the numbers, and flags the
/// answer as approximate.
pub fn caveat(primary: &str, reason: &str, fallback: &str) -> String {
    format!(
        "{CAVEAT_PREFIX} the {primary} failed ({reason}); this answer was \
         produced by the {fallback} fallback and should be treated as \
         approximate."
    )
}

/// Maps an injected fault at the power-flow boundary to the solver error
/// it imitates. Non-powerflow kinds scripted at this site are ignored.
fn injected_pf_error(site: &str) -> Option<PfError> {
    match gm_faults::inject(site) {
        Some(gm_faults::FaultKind::NewtonDiverge) => Some(PfError::Diverged {
            iterations: 0,
            mismatch_pu: f64::INFINITY,
        }),
        Some(gm_faults::FaultKind::LuSingular) => Some(PfError::SingularJacobian { iteration: 0 }),
        _ => None,
    }
}

/// Whether a power-flow error is a numerical failure the ladder can
/// recover from (as opposed to a malformed network).
fn pf_recoverable(e: &PfError) -> bool {
    matches!(
        e,
        PfError::Diverged { .. } | PfError::SingularJacobian { .. }
    )
}

/// Base-case power flow with the full recovery ladder.
///
/// Returns the report plus `Some(caveat)` when a fallback rung produced
/// it. The fallback result is *not* written to the shared cache.
pub fn solve_base_recovered(
    cache: Option<&SharedSolverCache>,
    net: &Network,
    opts: &CaOptions,
) -> Result<(PfReport, Option<String>), PfError> {
    let primary = match injected_pf_error("pf.base") {
        Some(e) => Err(e),
        None => solve_base_cached(cache, net, opts),
    };
    let err = match primary {
        Ok(rep) => return Ok((rep, None)),
        Err(e) if pf_recoverable(&e) => e,
        Err(e) => return Err(e),
    };
    gm_telemetry::counter_add("recovery.attempts", 1);
    gm_telemetry::flight_event("recovery.descent", format!("ladder=pf reason={err}"));
    match pf_ladder(net, &opts.pf, &err.to_string()) {
        Some((rep, cav)) => Ok((rep, Some(cav))),
        None => Err(err),
    }
}

/// Rungs 2–4 of the power-flow ladder (the primary attempt has already
/// failed with `reason`). Returns the recovered report and its caveat,
/// or `None` when every rung fails. Also used by the N-1 tool to rebuild
/// a base case after the sweep's own base solve fails — callers there
/// must bump `recovery.attempts` themselves.
pub(crate) fn pf_ladder(net: &Network, pf: &PfOptions, reason: &str) -> Option<(PfReport, String)> {
    // One symbolic-LU engine spans the whole ladder: the flat-Newton
    // retry and the FDLF rung's Newton polish share the same Jacobian
    // pattern, so descending a rung reuses the analysis the rung above
    // already paid for.
    let mut engine = gm_sparse::LuEngine::new();
    // Rung 2: flat-start damped Newton, doubled budget. An injected
    // `pf.retry` fault forces the ladder past this rung.
    if gm_faults::inject("pf.retry").is_none() {
        let retry = PfOptions {
            init: InitStrategy::Flat,
            iwamoto_damping: true,
            max_iter: pf.max_iter.saturating_mul(2),
            ..pf.clone()
        };
        if let Ok(rep) = gm_powerflow::solve_from_with_engine(net, &retry, None, &mut engine) {
            gm_telemetry::counter_add("recovery.newton_flat", 1);
            return Some((
                rep,
                caveat(
                    "warm-start Newton power flow",
                    reason,
                    "flat-start damped Newton",
                ),
            ));
        }
    }

    // Rung 3: fast-decoupled without Q-limit juggling.
    if gm_faults::inject("pf.retry.fdlf").is_none() {
        let fd = PfOptions {
            enforce_q_limits: false,
            max_iter: pf.max_iter.max(30).saturating_mul(2),
            ..pf.clone()
        };
        if let Ok(rep) = gm_powerflow::solve_fast_decoupled_with_engine(net, &fd, &mut engine) {
            gm_telemetry::counter_add("recovery.fdlf", 1);
            return Some((
                rep,
                caveat(
                    "Newton power flow",
                    reason,
                    "fast-decoupled power flow (Q-limits not enforced)",
                ),
            ));
        }
    }

    // Rung 4: DC approximation — report synthesized at flat voltage.
    match gm_powerflow::solve_dc(net) {
        Ok(dc) => {
            gm_telemetry::counter_add("recovery.dc", 1);
            Some((
                dc_to_pf_report(net, &dc),
                caveat(
                    "AC power flow",
                    reason,
                    "DC approximation (lossless, flat voltage; reactive \
                     quantities unavailable)",
                ),
            ))
        }
        Err(_) => None,
    }
}

/// Lifts a DC solution into the `PfReport` shape the tools and session
/// artifacts expect. Voltages are flat by construction, reactive
/// quantities zero, and losses zero (the DC model is lossless).
fn dc_to_pf_report(net: &Network, dc: &gm_powerflow::DcReport) -> PfReport {
    let (p_mw, _) = net.scheduled_injections();
    let buses: Vec<BusResult> = net
        .buses
        .iter()
        .enumerate()
        .map(|(i, b)| BusResult {
            id: b.id,
            vm_pu: 1.0,
            va_deg: dc.theta_rad.get(i).copied().unwrap_or(0.0).to_degrees(),
            p_mw: p_mw.get(i).copied().unwrap_or(0.0),
            q_mvar: 0.0,
        })
        .collect();
    let branches: Vec<BranchFlow> = net
        .branches
        .iter()
        .enumerate()
        .map(|(i, br)| {
            let flow = dc.flow_mw.get(i).copied().unwrap_or(0.0);
            BranchFlow {
                index: i,
                p_from_mw: flow,
                q_from_mvar: 0.0,
                p_to_mw: -flow,
                q_to_mvar: 0.0,
                loading_pct: if br.rating_mva > 0.0 {
                    100.0 * flow.abs() / br.rating_mva
                } else {
                    0.0
                },
            }
        })
        .collect();
    let slack = net.slack();
    let gens: Vec<GenResult> = net
        .gens
        .iter()
        .enumerate()
        .map(|(i, g)| GenResult {
            index: i,
            p_mw: if Some(g.bus) == slack {
                dc.slack_p_mw
            } else {
                g.p_mw
            },
            q_mvar: 0.0,
            at_q_limit: false,
        })
        .collect();
    let first_id = buses.first().map(|b| b.id).unwrap_or(0);
    let max_loading = branches
        .iter()
        .filter(|f| f.loading_pct > 0.0)
        .max_by(|a, b| a.loading_pct.total_cmp(&b.loading_pct))
        .map(|f| (f.loading_pct, f.index))
        .unwrap_or((0.0, usize::MAX));
    PfReport {
        converged: true,
        iterations: 0,
        q_limit_rounds: 0,
        max_mismatch_pu: 0.0,
        mismatch_history: Vec::new(),
        multipliers: Vec::new(),
        buses,
        branches,
        gens,
        losses_mw: 0.0,
        min_vm: (1.0, first_id),
        max_vm: (1.0, first_id),
        max_loading,
    }
}

/// ACOPF with the recovery ladder: interior point → DC OPF.
///
/// The degraded solution keeps the wire shape (`AcopfSolution`) the
/// tools narrate from: flat voltages, zero LMPs (the DC dual is not
/// comparable), zero losses, and a convergence message naming the
/// fallback.
pub fn solve_acopf_recovered(
    cache: Option<&SharedSolverCache>,
    net: &Network,
    opts: &AcopfOptions,
) -> Result<(AcopfSolution, Option<String>), AcopfError> {
    let primary = match gm_faults::inject("acopf.ipm") {
        Some(gm_faults::FaultKind::IpmStall) => Err(AcopfError::NotConverged {
            iterations: 0,
            feascond: f64::INFINITY,
            message: "barrier stall: complementarity gap stopped shrinking".into(),
        }),
        _ => solve_acopf_cached(cache, net, opts),
    };
    let err = match primary {
        Ok(sol) => return Ok((sol, None)),
        Err(e @ AcopfError::InvalidNetwork { .. }) => return Err(e),
        Err(e) => e,
    };
    gm_telemetry::counter_add("recovery.attempts", 1);
    let reason = err.to_string();
    gm_telemetry::flight_event("recovery.descent", format!("ladder=acopf reason={reason}"));
    match solve_dcopf(net, &IpmOptions::default()) {
        Ok(dc) => {
            gm_telemetry::counter_add("recovery.dcopf", 1);
            let sol = dcopf_to_acopf_solution(net, &dc);
            Ok((
                sol,
                Some(caveat(
                    "AC optimal power flow",
                    &reason,
                    "DC optimal power flow (lossless; voltages flat, LMPs \
                     unavailable)",
                )),
            ))
        }
        Err(_) => Err(err),
    }
}

/// Lifts a DC OPF solution into the `AcopfSolution` wire shape.
fn dcopf_to_acopf_solution(net: &Network, dc: &gm_acopf::DcOpfSolution) -> AcopfSolution {
    let n = net.n_bus();
    let branch_loading: Vec<BranchLoading> = net
        .branches
        .iter()
        .enumerate()
        .map(|(i, br)| {
            let flow = dc.flow_mw.get(i).copied().unwrap_or(0.0);
            BranchLoading {
                index: i,
                s_mva: flow.abs(),
                loading_pct: if br.rating_mva > 0.0 {
                    100.0 * flow.abs() / br.rating_mva
                } else {
                    0.0
                },
                p_from_mw: flow,
            }
        })
        .collect();
    let max_thermal_loading_pct = branch_loading
        .iter()
        .map(|b| b.loading_pct)
        .fold(0.0f64, f64::max);
    let total_generation_mw: f64 = dc.gen_dispatch_mw.iter().sum();
    AcopfSolution {
        case_name: net.name.clone(),
        solved: true,
        objective_cost: dc.objective_cost,
        gen_dispatch_mw: dc.gen_dispatch_mw.clone(),
        gen_dispatch_mvar: vec![0.0; net.gens.len()],
        bus_vm_pu: vec![1.0; n],
        bus_va_deg: dc.bus_va_deg.clone(),
        bus_lmp: vec![0.0; n],
        branch_loading,
        min_voltage_pu: 1.0,
        max_voltage_pu: 1.0,
        max_thermal_loading_pct,
        total_generation_mw,
        total_load_mw: net.total_load_mw(),
        losses_mw: 0.0,
        iterations: dc.iterations,
        solve_time_s: 0.0,
        convergence_message: "DC OPF fallback (primary ACOPF did not converge)".into(),
        binding_constraints: 0,
    }
}

/// SCOPF with the recovery ladder: on a numerical failure the tool falls
/// back to the *unconstrained* ACOPF ladder and reports a zero security
/// premium — with a caveat making the missing security enforcement
/// explicit.
pub fn solve_scopf_recovered(
    cache: Option<&SharedSolverCache>,
    net: &Network,
    opts: &ScopfOptions,
) -> Result<(ScopfSolution, Option<String>), AcopfError> {
    let err = match solve_scopf_cached(cache, net, opts) {
        Ok(s) => return Ok((s, None)),
        Err(e @ AcopfError::InvalidNetwork { .. }) => return Err(e),
        Err(e) => e,
    };
    gm_telemetry::counter_add("recovery.attempts", 1);
    let reason = err.to_string();
    gm_telemetry::flight_event("recovery.descent", format!("ladder=scopf reason={reason}"));
    let (sol, inner) = solve_acopf_recovered(cache, net, &opts.acopf)?;
    gm_telemetry::counter_add("recovery.scopf_unconstrained", 1);
    let cost = sol.objective_cost;
    let scopf = ScopfSolution {
        solution: sol,
        economic_cost: cost,
        security_premium: 0.0,
        n_security_constraints: 0,
    };
    let mut text = caveat(
        "security-constrained OPF",
        &reason,
        "unconstrained economic dispatch (post-contingency security NOT \
         enforced)",
    );
    if let Some(inner) = inner {
        text.push(' ');
        text.push_str(&inner);
    }
    Ok((scopf, Some(text)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver_cache::SolverCache;
    use gm_faults::{FaultInjector, FaultKind, FaultRule};
    use gm_network::{cases, CaseId};

    fn net14() -> Network {
        cases::load(CaseId::Ieee14)
    }

    #[test]
    fn no_fault_means_no_caveat_and_no_counters() {
        let reg = gm_telemetry::Registry::new();
        let _t = reg.install();
        let (rep, cav) = solve_base_recovered(None, &net14(), &CaOptions::default()).unwrap();
        assert!(rep.converged);
        assert!(cav.is_none());
        let (sol, cav) = solve_acopf_recovered(None, &net14(), &AcopfOptions::default()).unwrap();
        assert!(sol.solved);
        assert!(cav.is_none());
        assert_eq!(reg.counter_value("recovery.attempts"), 0);
    }

    #[test]
    fn injected_divergence_recovers_via_flat_newton() {
        let reg = gm_telemetry::Registry::new();
        let _t = reg.install();
        let inj = FaultInjector::scripted(vec![FaultRule::new(
            "pf.base",
            FaultKind::NewtonDiverge,
            0,
            1,
        )]);
        let _g = inj.install();
        let (rep, cav) = solve_base_recovered(None, &net14(), &CaOptions::default()).unwrap();
        assert!(rep.converged);
        let cav = cav.expect("fallback answers must carry a caveat");
        assert!(cav.starts_with(CAVEAT_PREFIX), "{cav}");
        assert!(cav.contains("flat-start damped Newton"), "{cav}");
        assert_eq!(reg.counter_value("recovery.attempts"), 1);
        assert_eq!(reg.counter_value("recovery.newton_flat"), 1);
    }

    #[test]
    fn ladder_descends_to_fdlf_and_dc_when_rungs_are_skipped() {
        let reg = gm_telemetry::Registry::new();
        let _t = reg.install();
        // First call: kill the warm start and the flat-Newton rung.
        let inj = FaultInjector::scripted(vec![
            FaultRule::new("pf.base", FaultKind::LuSingular, 0, 2),
            FaultRule::new("pf.retry", FaultKind::NewtonDiverge, 0, 2),
            FaultRule::new("pf.retry.fdlf", FaultKind::NewtonDiverge, 1, 1),
        ]);
        let _g = inj.install();
        let (rep, cav) = solve_base_recovered(None, &net14(), &CaOptions::default()).unwrap();
        assert!(rep.converged);
        assert!(cav.unwrap().contains("fast-decoupled"), "rung 3 expected");
        // Second call: FDLF rung is skipped too → DC floor.
        let (rep, cav) = solve_base_recovered(None, &net14(), &CaOptions::default()).unwrap();
        assert!(rep.converged);
        assert_eq!(rep.losses_mw, 0.0, "DC model is lossless");
        assert_eq!(rep.min_vm.0, 1.0, "DC voltages are flat");
        let cav = cav.unwrap();
        assert!(cav.contains("DC approximation"), "{cav}");
        assert_eq!(reg.counter_value("recovery.fdlf"), 1);
        assert_eq!(reg.counter_value("recovery.dc"), 1);
        assert_eq!(reg.counter_value("recovery.attempts"), 2);
    }

    #[test]
    fn ipm_stall_falls_back_to_dcopf() {
        let reg = gm_telemetry::Registry::new();
        let _t = reg.install();
        let inj =
            FaultInjector::scripted(vec![FaultRule::new("acopf.ipm", FaultKind::IpmStall, 0, 1)]);
        let _g = inj.install();
        let net = net14();
        let (sol, cav) = solve_acopf_recovered(None, &net, &AcopfOptions::default()).unwrap();
        assert!(sol.solved);
        assert!(sol.objective_cost > 0.0);
        assert_eq!(sol.losses_mw, 0.0);
        assert_eq!(sol.bus_lmp, vec![0.0; net.n_bus()]);
        let cav = cav.expect("DC OPF answers must be caveated");
        assert!(cav.starts_with(CAVEAT_PREFIX), "{cav}");
        assert!(cav.contains("barrier stall"), "{cav}");
        assert_eq!(reg.counter_value("recovery.dcopf"), 1);
        // The degraded solution still balances generation against load.
        assert!(sol.power_balance_error_mw().abs() < 1.0);
    }

    #[test]
    fn fallback_is_not_written_to_the_shared_cache() {
        let net = net14();
        let cache = SolverCache::new(8);
        let inj = FaultInjector::scripted(vec![FaultRule::new(
            "pf.base",
            FaultKind::NewtonDiverge,
            0,
            1,
        )]);
        let g = inj.install();
        let (_, cav) = solve_base_recovered(Some(&cache), &net, &CaOptions::default()).unwrap();
        assert!(cav.is_some());
        drop(g);
        assert!(
            cache.is_empty(),
            "a degraded answer must never seed the shared cache"
        );
        // The next (fault-free) call computes and caches the real answer.
        let (rep, cav) = solve_base_recovered(Some(&cache), &net, &CaOptions::default()).unwrap();
        assert!(cav.is_none());
        assert!(rep.losses_mw > 0.0);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn invalid_network_is_not_recovered() {
        let mut net = net14();
        for b in &mut net.buses {
            b.kind = gm_network::BusKind::Pq; // no slack anywhere
        }
        let err = solve_base_recovered(None, &net, &CaOptions::default()).unwrap_err();
        assert!(matches!(err, PfError::InvalidNetwork { .. }));
    }
}
