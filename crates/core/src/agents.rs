//! Constructors for the two domain agents (§3.2), wired to a shared
//! session and a chosen model profile.

use crate::planners::{AcopfPlanner, CaPlanner};
use crate::session::SharedSession;
use crate::tools_acopf;
use crate::tools_batch;
use crate::tools_ca;
use crate::validators::{ConvergenceValidator, OperatingLimitValidator, PowerBalanceValidator};
use gm_agents::{Agent, ModelProfile, SimulatedLlm, ToolRegistry, VirtualClock};
use std::sync::Arc;

/// The ACOPF agent's system prompt (paper Fig. 4).
pub const ACOPF_SYSTEM_PROMPT: &str = "\
You are an expert ACOPF (AC Optimal Power Flow) agent for power system analysis.

Your capabilities include:
1. Solving ACOPF problems for standard IEEE test cases (14, 30, 57, 118, 300 bus systems)
2. Modifying system parameters (loads, generation limits, etc.) and re-solving
3. Validating solutions by checking power flows, voltage limits, and line loadings
4. Assessing solution quality and providing recommendations
5. Engaging in conversational interactions about power system optimization

You have access to the following tools:
- solve_acopf_case: Load and solve an IEEE test case
- modify_bus_load: Modify load at a specific bus and re-solve
- modify_gen_limits: Change a unit's active power limits and re-solve
- solve_security_constrained: Solve the preventive security-constrained OPF
- batch_study: Solve many what-if scenarios (load sweep, daily profile, bus ramp) in one batched run
- get_network_status: Get current network and solution status

Never fabricate solver outputs; always call tools for numerical data.
Always provide clear explanations of results, including objective values and any constraint violations.";

/// The contingency analysis agent's system prompt (paper Fig. 5).
pub const CA_SYSTEM_PROMPT: &str = "\
You are an expert Contingency Analysis agent for power system reliability assessment.

Your capabilities include:
1. Solving base case power flow problems for standard IEEE test cases
2. Running comprehensive N-1 contingency analysis
3. Analyzing specific contingencies (line outages, transformer outages)
4. Identifying critical contingencies and system vulnerabilities
5. Assessing voltage violations and equipment overloads
6. Providing recommendations for system reinforcement

You have access to the following tools:
- solve_base_case: Load and solve base case before contingency analysis
- run_n1_contingency_analysis: Run comprehensive N-1 analysis
- analyze_specific_contingency: Analyze a specific element outage
- run_generator_contingency_analysis: Simulate unit (T-1) outages
- get_contingency_status: Get current analysis status and results

When users ask to analyze contingencies, first ensure a base case is solved.
Never fabricate solver outputs; always call tools for numerical data.";

/// Builds the ACOPF agent on a shared session.
pub fn build_acopf_agent(
    profile: ModelProfile,
    session: SharedSession,
    clock: VirtualClock,
) -> Agent {
    let mut tools = ToolRegistry::new(clock.clone());
    tools.register(tools_acopf::solve_acopf_case_tool(
        session.clone(),
        clock.clone(),
    ));
    tools.register(tools_acopf::modify_bus_load_tool(
        session.clone(),
        clock.clone(),
    ));
    tools.register(tools_acopf::modify_gen_limits_tool(
        session.clone(),
        clock.clone(),
    ));
    tools.register(tools_acopf::solve_security_constrained_tool(
        session.clone(),
        clock.clone(),
    ));
    tools.register(tools_batch::batch_study_tool(
        session.clone(),
        clock.clone(),
    ));
    tools.register(tools_acopf::get_network_status_tool(session, clock.clone()));
    let llm = Arc::new(SimulatedLlm::new(profile, AcopfPlanner));
    let mut agent = Agent::new("ACOPF Agent", ACOPF_SYSTEM_PROMPT, llm, tools, clock);
    agent.add_validator(ConvergenceValidator);
    agent.add_validator(PowerBalanceValidator::default());
    agent.add_validator(OperatingLimitValidator::default());
    agent
}

/// Builds the contingency analysis agent on a shared session.
pub fn build_ca_agent(profile: ModelProfile, session: SharedSession, clock: VirtualClock) -> Agent {
    let mut tools = ToolRegistry::new(clock.clone());
    tools.register(tools_ca::solve_base_case_tool(
        session.clone(),
        clock.clone(),
    ));
    tools.register(tools_ca::run_n1_tool(session.clone(), clock.clone()));
    tools.register(tools_ca::analyze_specific_tool(
        session.clone(),
        clock.clone(),
    ));
    tools.register(tools_ca::run_gen_n1_tool(session.clone(), clock.clone()));
    tools.register(tools_ca::get_contingency_status_tool(
        session,
        clock.clone(),
    ));
    let llm = Arc::new(SimulatedLlm::new(profile, CaPlanner));
    let mut agent = Agent::new(
        "Contingency Analysis Agent",
        CA_SYSTEM_PROMPT,
        llm,
        tools,
        clock,
    );
    agent.add_validator(ConvergenceValidator);
    agent.add_validator(OperatingLimitValidator::default());
    agent
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::SessionContext;

    #[test]
    fn acopf_agent_end_to_end_solve() {
        let session = SessionContext::new();
        let clock = VirtualClock::new();
        let mut agent = build_acopf_agent(
            ModelProfile::by_name("GPT-o3").unwrap(),
            session.clone(),
            clock,
        );
        let resp = agent.handle("solve 14");
        assert!(resp.completed, "{}", resp.text);
        assert!(resp.text.contains("Solved ACOPF"));
        assert!(
            resp.text.contains("8081") || resp.text.contains("808"),
            "{}",
            resp.text
        );
        assert!(session.fresh_acopf().is_some());
        assert!(resp.elapsed_s > 1.0, "LLM latency must be charged");
    }

    #[test]
    fn acopf_agent_what_if_flow() {
        let session = SessionContext::new();
        let clock = VirtualClock::new();
        let mut agent = build_acopf_agent(
            ModelProfile::by_name("GPT-o4 Mini").unwrap(),
            session.clone(),
            clock,
        );
        agent.handle("solve case14");
        let resp = agent.handle("Increase the load for bus 10 to 50MW");
        assert!(resp.completed);
        assert!(resp.text.contains("bus 10"), "{}", resp.text);
        assert!(resp.text.contains("change of"), "{}", resp.text);
        assert_eq!(session.diff_count(), 1);
    }

    #[test]
    fn ca_agent_full_analysis() {
        let session = SessionContext::new();
        let clock = VirtualClock::new();
        let mut agent = build_ca_agent(
            ModelProfile::by_name("GPT-o3").unwrap(),
            session.clone(),
            clock,
        );
        let resp = agent.handle("run the n-1 contingency analysis for case14");
        assert!(resp.completed, "{}", resp.text);
        assert!(
            resp.text.contains("N-1 contingency analysis"),
            "{}",
            resp.text
        );
        assert!(
            resp.text.contains("Most critical elements"),
            "{}",
            resp.text
        );
        assert!(session.fresh_contingency().is_some());
        // Two tool calls: base case + sweep.
        assert_eq!(resp.tool_calls.len(), 2);
    }

    #[test]
    fn acopf_agent_gen_limit_change() {
        let session = SessionContext::new();
        let clock = VirtualClock::new();
        let mut agent = build_acopf_agent(
            ModelProfile::by_name("GPT-o3").unwrap(),
            session.clone(),
            clock,
        );
        agent.handle("solve case14");
        let cost0 = session.fresh_acopf().unwrap().objective_cost;
        // Derating the cheap slack unit must raise the optimal cost.
        let resp = agent.handle("limit the generator capacity at bus 1 to between 0 and 120 MW");
        assert!(resp.completed, "{}", resp.text);
        assert!(resp.text.contains("bus 1"), "{}", resp.text);
        let cost1 = session.fresh_acopf().unwrap().objective_cost;
        assert!(
            cost1 > cost0,
            "derating cheap capacity must cost: {cost1} !> {cost0}"
        );
        assert_eq!(session.diff_count(), 1);
    }

    #[test]
    fn acopf_agent_security_constrained_request() {
        let session = SessionContext::new();
        let clock = VirtualClock::new();
        let mut agent = build_acopf_agent(
            ModelProfile::by_name("GPT-o3").unwrap(),
            session.clone(),
            clock,
        );
        let resp = agent.handle("give me a security-constrained dispatch for case30");
        assert!(resp.completed, "{}", resp.text);
        assert!(resp.text.contains("security premium"), "{}", resp.text);
        assert!(session.fresh_acopf().is_some());
    }

    #[test]
    fn modify_before_solve_takes_recovery_path() {
        let session = SessionContext::new();
        let clock = VirtualClock::new();
        let mut agent =
            build_acopf_agent(ModelProfile::by_name("GPT-5 Nano").unwrap(), session, clock);
        // Mention the case inline so recovery can identify it.
        let resp = agent.handle("on case30, increase the load at bus 5 to 120 MW");
        assert!(resp.completed, "{}", resp.text);
        // First call fails (no case), recovery solves the case, then the
        // modification succeeds.
        assert!(resp.tool_calls.iter().any(|c| !c.ok));
        assert!(resp.tool_calls.iter().filter(|c| c.ok).count() >= 2);
        assert!(resp.text.contains("bus 5"), "{}", resp.text);
    }

    #[test]
    fn acopf_agent_batch_study_flow() {
        let reg = gm_telemetry::Registry::new();
        let _t = reg.install();
        let session = SessionContext::new();
        let clock = VirtualClock::new();
        let mut agent = build_acopf_agent(
            ModelProfile::by_name("GPT-o3").unwrap(),
            session.clone(),
            clock,
        );
        let resp = agent.handle("on case14, sweep the load from 90% to 110% in 5 steps");
        assert!(resp.completed, "{}", resp.text);
        assert!(resp.text.contains("Batched study"), "{}", resp.text);
        assert!(resp.text.contains("5 scenarios"), "{}", resp.text);
        assert!(
            resp.text.contains("Cheapest operating point"),
            "{}",
            resp.text
        );
        // Light load is the cheap end of the sweep.
        assert!(resp.text.contains("load 90.0%"), "{}", resp.text);
        assert_eq!(reg.counter_value("batch.scenarios"), 5);
        assert!(reg.counter_value("batch.warm_hits") >= 3);
    }

    #[test]
    fn injected_batch_divergence_is_absorbed_by_flat_restart() {
        let reg = gm_telemetry::Registry::new();
        let _t = reg.install();
        let inj = gm_faults::FaultInjector::scripted(vec![gm_faults::FaultRule::new(
            "batch.scenario",
            gm_faults::FaultKind::NewtonDiverge,
            1,
            1,
        )]);
        let _g = inj.install();
        let session = SessionContext::new();
        let clock = VirtualClock::new();
        let mut agent = build_acopf_agent(ModelProfile::by_name("GPT-o3").unwrap(), session, clock);
        let resp = agent.handle("on case14, sweep the load from 95% to 105% in 5 steps");
        // The injected divergence is absorbed inside the batch engine:
        // the scenario restarts from flat, converges, and the study
        // narrates normally — never a hard error.
        assert!(resp.completed, "{}", resp.text);
        assert!(resp.text.contains("Batched study"), "{}", resp.text);
        assert!(resp.text.contains("1 flat restart(s)"), "{}", resp.text);
        assert!(!resp.text.contains("unsolved"), "{}", resp.text);
        assert_eq!(reg.counter_value("batch.flat_restarts"), 1);
        assert_eq!(reg.counter_value("recovery.attempts"), 0);
    }

    #[test]
    fn batch_study_caveats_unsolvable_scenarios_instead_of_failing() {
        let reg = gm_telemetry::Registry::new();
        let _t = reg.install();
        let session = SessionContext::new();
        let clock = VirtualClock::new();
        let mut agent = build_acopf_agent(ModelProfile::by_name("GPT-o3").unwrap(), session, clock);
        // 400% of nominal load is far beyond case14's loadability: those
        // scenarios fail Newton, fail the in-engine flat restart, and
        // descend the recovery ladder — each producing a caveated
        // approximate row, not an error.
        let resp = agent.handle("on case14, sweep the load from 100% to 400% in 4 steps");
        assert!(resp.completed, "{}", resp.text);
        assert!(resp.text.contains("Batched study"), "{}", resp.text);
        assert!(
            resp.text.contains(crate::recovery::CAVEAT_PREFIX),
            "degraded rows must surface a caveat: {}",
            resp.text
        );
        assert!(reg.counter_value("recovery.attempts") >= 1);
        assert!(reg.counter_value("batch.flat_restarts") >= 1);
    }
}
