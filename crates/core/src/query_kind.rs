//! Query-kind tagging at the tool boundary.
//!
//! The serve layer buckets request latency into per-kind quantile
//! sketches (`serve.latency.<kind>.total_s` and friends), and the SLO
//! gate (`gm-trace slo` against `slo.toml`) sets targets per kind — a
//! contingency sweep is allowed two orders of magnitude more budget
//! than a status recall. [`classify_query_kind`] is the single,
//! deterministic mapping from raw query text to that kind label, kept
//! beside the coordinator's routing rules so the two keyword sets
//! evolve together (routing decides *which agent*, kind tagging decides
//! *which latency bucket*).

/// Every label [`classify_query_kind`] can produce, in match order.
pub const QUERY_KIND_LABELS: &[&str] = &["contingency", "batch", "mutate", "status", "pf", "other"];

/// Classifies a query into its latency-accounting kind:
///
/// - `"contingency"` — N-1/outage sweeps (the expensive path),
/// - `"batch"` — multi-scenario studies (load sweeps, daily profiles),
/// - `"mutate"` — network edits (set/increase/decrease a load or limit),
/// - `"status"` — state recall, no solver work expected,
/// - `"pf"` — power-flow / OPF solves,
/// - `"other"` — anything the keywords miss.
pub fn classify_query_kind(query: &str) -> &'static str {
    let q = query.to_ascii_lowercase();
    let has = |kws: &[&str]| kws.iter().any(|k| q.contains(k));
    if has(&[
        "n-1",
        "t-1",
        "contingen",
        "outage",
        "reliability",
        "vulnerab",
    ]) {
        "contingency"
    } else if has(&[
        "sweep",
        "batch",
        "scenarios",
        "across the day",
        "daily profile",
        "hourly",
    ]) {
        // Before "mutate"/"pf": "sweep the load from 80% to 120%"
        // contains both "load" and often "increase"-ish wording, but it
        // is a many-solve batch, not a single mutate-and-resolve.
        "batch"
    } else if has(&[
        "set ",
        "set the",
        "increase",
        "decrease",
        "modify",
        "change the",
    ]) {
        "mutate"
    } else if has(&[
        "status",
        "summary",
        "summarize",
        "what is",
        "what's",
        "report",
    ]) {
        "status"
    } else if has(&["solve", "opf", "power flow", "dispatch", "optimal", "case"]) {
        "pf"
    } else {
        "other"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classifies_the_standard_script() {
        // The four queries of the serve workload's default script map to
        // four distinct kinds.
        assert_eq!(classify_query_kind("solve case14"), "pf");
        assert_eq!(
            classify_query_kind("run the n-1 contingency analysis"),
            "contingency"
        );
        assert_eq!(
            classify_query_kind("set the load at bus 9 to 45 MW"),
            "mutate"
        );
        assert_eq!(classify_query_kind("what is the network status"), "status");
    }

    #[test]
    fn classification_is_case_insensitive_and_total() {
        assert_eq!(classify_query_kind("SOLVE IEEE 118"), "pf");
        assert_eq!(
            classify_query_kind("Run Contingency Screening"),
            "contingency"
        );
        assert_eq!(classify_query_kind("hello there"), "other");
        assert!(QUERY_KIND_LABELS.contains(&classify_query_kind("")));
    }

    #[test]
    fn batch_studies_get_their_own_bucket() {
        assert_eq!(
            classify_query_kind("sweep the load from 80% to 120% in 8 steps"),
            "batch"
        );
        assert_eq!(
            classify_query_kind("how does case118 look across the day?"),
            "batch"
        );
        // N-1 keywords still win over batch keywords.
        assert_eq!(classify_query_kind("batch the n-1 outages"), "contingency");
    }

    #[test]
    fn every_label_is_reachable_and_listed() {
        for (query, want) in [
            ("run the n-1 sweep", "contingency"),
            ("run a batch study of the load", "batch"),
            ("increase the load at bus 2", "mutate"),
            ("network status please", "status"),
            ("solve the base case", "pf"),
            ("tell me a story", "other"),
        ] {
            let got = classify_query_kind(query);
            assert_eq!(got, want);
            assert!(QUERY_KIND_LABELS.contains(&got));
        }
    }
}
