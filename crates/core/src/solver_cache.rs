//! Cross-session solver result cache (the gm-serve tentpole).
//!
//! The deterministic solvers are pure functions of `(network, options)`:
//! identical ACOPF / power-flow / N-1 requests from *different* sessions
//! re-derive byte-identical results. A [`SolverCache`] shared across
//! sessions memoizes those results under a composite key —
//!
//! ```text
//! (network content hash, query kind, solver-option fingerprint)
//! ```
//!
//! — so the second session asking "solve case30" reuses the first
//! session's interior-point solution instead of re-running the IPM.
//! Conversational state stays per-session: the cache stores only solver
//! *outcomes* (solutions, reports), never narration, memory, or session
//! artifacts, and the tool layer still deposits the (cached) artifact
//! into its own session, so freshness tracking and status queries behave
//! identically whether a value was computed or recalled.
//!
//! Soundness rests on what the key hashes (see DESIGN.md "Cache-key
//! soundness"): [`gm_network::Network::content_hash`] covers every
//! electrical parameter including per-branch ratings and service flags,
//! and the option fingerprints cover every solver control that can alter
//! the result. Wall-clock fields embedded in cached values
//! (`solve_time_s`, `sweep_time_s`) are the *original* computation's
//! timings, which keeps replayed answers deterministic.
//!
//! The cache is LRU-bounded with hit/miss/eviction accounting, mirrored
//! to the installed telemetry collector as `serve.cache.{hits,misses,
//! evictions,inserts}`.

use gm_acopf::{
    solve_acopf, solve_scopf, AcopfError, AcopfOptions, AcopfSolution, ScopfOptions, ScopfSolution,
};
use gm_contingency::{solve_base, CaOptions, ContingencyCache, ContingencyReport};
use gm_network::Network;
use gm_powerflow::{BatchError, BatchReport, PfError, PfOptions, PfReport, ScenarioSet};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Normalized query kind — the middle component of the cache key.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum QueryKind {
    /// AC optimal power flow.
    Acopf,
    /// Security-constrained OPF.
    Scopf,
    /// Base-case AC power flow.
    BasePf,
    /// Full N-1 branch-outage sweep.
    ContingencyN1,
    /// Batched multi-scenario study.
    BatchStudy,
}

/// Composite cache key: network content × query kind × solver options.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct SolverCacheKey {
    /// [`gm_network::Network::content_hash`] of the exact network solved.
    pub net_hash: u64,
    /// Normalized query kind.
    pub kind: QueryKind,
    /// Option fingerprint (`AcopfOptions::fingerprint` & friends).
    pub params: u64,
}

/// A memoized solver outcome.
#[derive(Clone, Debug)]
pub enum SolverResult {
    /// A solved ACOPF.
    Acopf(AcopfSolution),
    /// A solved SCOPF.
    Scopf(ScopfSolution),
    /// A solved base power flow.
    Pf(PfReport),
    /// A completed N-1 sweep report.
    Contingency(ContingencyReport),
    /// A completed batched multi-scenario study.
    Batch(BatchReport),
}

/// Cumulative cache statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SolverCacheStats {
    /// Lookups that found a memoized result.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries displaced by the LRU capacity bound.
    pub evictions: u64,
    /// Successful inserts.
    pub inserts: u64,
}

struct LruState {
    map: HashMap<SolverCacheKey, SolverResult>,
    /// Keys in recency order: front = least recently used.
    order: Vec<SolverCacheKey>,
}

/// Thread-safe, LRU-bounded, cross-session solver result cache.
pub struct SolverCache {
    inner: Mutex<LruState>,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    inserts: AtomicU64,
}

/// Shared cache handle, one per server, referenced by every session.
pub type SharedSolverCache = Arc<SolverCache>;

impl std::fmt::Debug for SolverCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.stats();
        write!(
            f,
            "SolverCache(len {}, cap {}, {} hits / {} misses / {} evictions)",
            self.len(),
            self.capacity,
            s.hits,
            s.misses,
            s.evictions
        )
    }
}

impl SolverCache {
    /// Empty cache bounded to `capacity` entries (minimum 1).
    pub fn new(capacity: usize) -> SharedSolverCache {
        Arc::new(SolverCache {
            inner: Mutex::new(LruState {
                map: HashMap::new(),
                order: Vec::new(),
            }),
            capacity: capacity.max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            inserts: AtomicU64::new(0),
        })
    }

    /// Fetches a memoized result, refreshing its recency and counting
    /// the hit/miss into both the local stats and the installed
    /// telemetry collector.
    pub fn get(&self, key: &SolverCacheKey) -> Option<SolverResult> {
        let mut state = self.inner.lock();
        let found = state.map.get(key).cloned();
        if found.is_some() {
            if let Some(pos) = state.order.iter().position(|k| k == key) {
                let k = state.order.remove(pos);
                state.order.push(k);
            }
            drop(state);
            self.hits.fetch_add(1, Ordering::Relaxed);
            gm_telemetry::counter_add("serve.cache.hits", 1);
            gm_telemetry::flight_event("cache.hit", format!("kind={:?}", key.kind));
        } else {
            drop(state);
            self.misses.fetch_add(1, Ordering::Relaxed);
            gm_telemetry::counter_add("serve.cache.misses", 1);
            gm_telemetry::flight_event("cache.miss", format!("kind={:?}", key.kind));
        }
        found
    }

    /// Stores a result, evicting the least-recently-used entry when the
    /// capacity bound is reached.
    pub fn put(&self, key: SolverCacheKey, result: SolverResult) {
        let mut state = self.inner.lock();
        if state.map.insert(key, result).is_none() {
            state.order.push(key);
            while state.map.len() > self.capacity {
                let victim = state.order.remove(0);
                state.map.remove(&victim);
                self.evictions.fetch_add(1, Ordering::Relaxed);
                gm_telemetry::counter_add("serve.cache.evictions", 1);
            }
        } else if let Some(pos) = state.order.iter().position(|k| k == &key) {
            // Overwrite refreshes recency.
            let k = state.order.remove(pos);
            state.order.push(k);
        }
        drop(state);
        self.inserts.fetch_add(1, Ordering::Relaxed);
        gm_telemetry::counter_add("serve.cache.inserts", 1);
    }

    /// Evicts one entry outright (poison recovery — distinct from LRU
    /// displacement, so it does not count toward `evictions`). Returns
    /// whether the key was present.
    pub fn remove(&self, key: &SolverCacheKey) -> bool {
        let mut state = self.inner.lock();
        let removed = state.map.remove(key).is_some();
        if removed {
            if let Some(pos) = state.order.iter().position(|k| k == key) {
                state.order.remove(pos);
            }
        }
        removed
    }

    /// Number of memoized entries.
    pub fn len(&self) -> usize {
        self.inner.lock().map.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Maximum entry count before LRU eviction.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Cumulative statistics snapshot.
    pub fn stats(&self) -> SolverCacheStats {
        SolverCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            inserts: self.inserts.load(Ordering::Relaxed),
        }
    }

    /// Keys in recency order (front = next eviction victim). Test and
    /// diagnostics hook.
    pub fn recency_order(&self) -> Vec<SolverCacheKey> {
        self.inner.lock().order.clone()
    }
}

/// Cache lookup with fault-injection hooks (site `cache.get`): an
/// injected [`gm_faults::FaultKind::CacheMiss`] makes the entry
/// invisible (forcing a re-solve), an injected `CachePoison` simulates a
/// corrupted entry — it is discarded, counted as
/// `serve.cache.poison_detected`, and recomputed. With no injector
/// installed this is exactly `cache.get(key)`.
fn cache_lookup(cache: &SolverCache, key: &SolverCacheKey) -> Option<SolverResult> {
    match gm_faults::inject("cache.get") {
        Some(gm_faults::FaultKind::CacheMiss) => None,
        Some(gm_faults::FaultKind::CachePoison) => {
            // The poisoned entry must not be served — *evict* it. The
            // previous recovery only looked the entry up (refreshing
            // its recency!) and left it in the map, where every
            // concurrent reader could still be served the corrupted
            // bytes until this thread's fresh solve overwrote it.
            cache.remove(key);
            gm_telemetry::counter_add("serve.cache.poison_detected", 1);
            None
        }
        _ => cache.get(key),
    }
}

/// ACOPF through the cache: a hit recalls the memoized interior-point
/// solution; a miss solves and memoizes. `None` cache always solves.
pub fn solve_acopf_cached(
    cache: Option<&SharedSolverCache>,
    net: &Network,
    opts: &AcopfOptions,
) -> Result<AcopfSolution, AcopfError> {
    let Some(cache) = cache else {
        return solve_acopf(net, opts);
    };
    let key = SolverCacheKey {
        net_hash: net.content_hash(),
        kind: QueryKind::Acopf,
        params: opts.fingerprint(),
    };
    if let Some(SolverResult::Acopf(sol)) = cache_lookup(cache, &key) {
        return Ok(sol);
    }
    let sol = solve_acopf(net, opts)?;
    cache.put(key, SolverResult::Acopf(sol.clone()));
    Ok(sol)
}

/// SCOPF through the cache.
pub fn solve_scopf_cached(
    cache: Option<&SharedSolverCache>,
    net: &Network,
    opts: &ScopfOptions,
) -> Result<ScopfSolution, AcopfError> {
    let Some(cache) = cache else {
        return solve_scopf(net, opts);
    };
    let key = SolverCacheKey {
        net_hash: net.content_hash(),
        kind: QueryKind::Scopf,
        params: opts.fingerprint(),
    };
    if let Some(SolverResult::Scopf(sol)) = cache_lookup(cache, &key) {
        return Ok(sol);
    }
    let sol = solve_scopf(net, opts)?;
    cache.put(key, SolverResult::Scopf(sol.clone()));
    Ok(sol)
}

/// Base-case power flow through the cache.
pub fn solve_base_cached(
    cache: Option<&SharedSolverCache>,
    net: &Network,
    opts: &CaOptions,
) -> Result<PfReport, PfError> {
    let Some(cache) = cache else {
        return solve_base(net, opts);
    };
    let key = SolverCacheKey {
        net_hash: net.content_hash(),
        kind: QueryKind::BasePf,
        params: opts.fingerprint(),
    };
    if let Some(SolverResult::Pf(rep)) = cache_lookup(cache, &key) {
        return Ok(rep);
    }
    let rep = solve_base(net, opts)?;
    cache.put(key, SolverResult::Pf(rep.clone()));
    Ok(rep)
}

/// Folds the N-1 parameter triple into one fingerprint via a canonical
/// **length-prefixed** byte encoding hashed with FNV-1a. Each field is
/// serialized as `len byte ‖ little-endian bytes`, so the byte stream
/// parses back to exactly one `(fingerprint, screened, threshold)`
/// triple and distinct triples can only collide through the hash itself
/// — unlike the previous xor/multiply mix, where the `screened` bit and
/// the threshold bits occupied overlapping lanes and a crafted
/// `(screened, threshold)` pair could alias a `(full, threshold')` key
/// (see `old_mix_collision_is_fixed`).
///
/// Since the sweep mode moved into [`CaOptions`] (`mode`, `screen_margin`,
/// `screen_band`, `screen_top_k` are all covered by
/// `CaOptions::fingerprint`), the extra fields are derived from the
/// options rather than passed by callers — kept in the key encoding so
/// pre-existing cache-key reasoning (and the collision regression test)
/// stays valid.
fn n1_params_fingerprint(opts_fp: u64, screened: bool, screen_threshold: f64) -> u64 {
    let fields: [&[u8]; 3] = [
        &opts_fp.to_le_bytes(),
        &[u8::from(screened)],
        &screen_threshold.to_bits().to_le_bytes(),
    ];
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut eat = |b: u8| {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0100_0000_01b3);
    };
    for field in fields {
        eat(field.len() as u8);
        for &b in field {
            eat(b);
        }
    }
    h
}

/// N-1 sweep through the cache. The sweep mode (brute / cascade /
/// screened) and the screening knobs live in `opts` and fold into the
/// parameter fingerprint so sweeps of different fidelity over the same
/// network never alias. On a miss the sweep runs with the session's
/// per-outage cache (`session_cache`) exactly as before.
pub fn run_n1_cached_shared(
    cache: Option<&SharedSolverCache>,
    net: &Network,
    opts: &CaOptions,
    base: Option<&PfReport>,
    session_cache: Option<(&ContingencyCache, u64)>,
) -> Result<ContingencyReport, PfError> {
    let run = |net: &Network| gm_contingency::engine::run_n1_cached(net, opts, base, session_cache);
    let Some(cache) = cache else {
        return run(net);
    };
    let params = n1_params_fingerprint(
        opts.fingerprint(),
        opts.mode == gm_contingency::SweepMode::Screened,
        opts.screen_cutoff(),
    );
    let key = SolverCacheKey {
        net_hash: net.content_hash(),
        kind: QueryKind::ContingencyN1,
        params,
    };
    if let Some(SolverResult::Contingency(rep)) = cache_lookup(cache, &key) {
        return Ok(rep);
    }
    let rep = run(net)?;
    cache.put(key, SolverResult::Contingency(rep.clone()));
    Ok(rep)
}

/// Folds the batch-study parameters — the power-flow options and the
/// full [`ScenarioSet`] — into one fingerprint via the same canonical
/// length-prefixed FNV-1a scheme as [`n1_params_fingerprint`].
///
/// This is the bugfix the batch tool shipped with: `SolverCacheKey`
/// only folds `Network::content_hash` and an *option* fingerprint, and
/// the scenario set is neither — two studies over the same base network
/// with the same options but different sweeps would alias if the set
/// were left out, and a naive unprefixed concatenation of labels/deltas
/// would let `["ab","c"]` alias `["a","bc"]`
/// (see `batch_naive_concat_collision_is_fixed`).
/// [`ScenarioSet::canonical_bytes`] length-prefixes every variable
/// field, and each `PfOptions` field is emitted as its own
/// length-prefixed field, so the byte stream parses back to exactly one
/// `(options, set)` pair.
fn batch_params_fingerprint(opts: &PfOptions, set: &ScenarioSet) -> u64 {
    let init_tag: u8 = match opts.init {
        gm_powerflow::InitStrategy::Flat => 0,
        gm_powerflow::InitStrategy::CaseValues => 1,
        gm_powerflow::InitStrategy::DcWarmStart => 2,
    };
    let set_bytes = set.canonical_bytes();
    let fields: [&[u8]; 7] = [
        &opts.tol_pu.to_bits().to_le_bytes(),
        &(opts.max_iter as u64).to_le_bytes(),
        &[u8::from(opts.iwamoto_damping)],
        &[u8::from(opts.enforce_q_limits)],
        &(opts.max_q_rounds as u64).to_le_bytes(),
        &[init_tag],
        &set_bytes,
    ];
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut eat = |b: u8| {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0100_0000_01b3);
    };
    for field in fields {
        // The set encoding can exceed 255 bytes; use a 4-byte prefix.
        for &b in &(field.len() as u32).to_le_bytes() {
            eat(b);
        }
        for &b in field {
            eat(b);
        }
    }
    h
}

/// Batched multi-scenario study through the cache. Only fully-clean
/// batches — every scenario outcome `Ok` — are memoized: a batch with
/// failed scenarios may be narrated through the recovery ladder with
/// CAVEATs, and degraded results must never be served from cache.
pub fn run_batch_cached(
    cache: Option<&SharedSolverCache>,
    net: &Network,
    opts: &PfOptions,
    set: &ScenarioSet,
) -> Result<BatchReport, BatchError> {
    let Some(cache) = cache else {
        return gm_powerflow::run_batch(net, opts, set);
    };
    let key = SolverCacheKey {
        net_hash: net.content_hash(),
        kind: QueryKind::BatchStudy,
        params: batch_params_fingerprint(opts, set),
    };
    if let Some(SolverResult::Batch(rep)) = cache_lookup(cache, &key) {
        return Ok(rep);
    }
    let rep = gm_powerflow::run_batch(net, opts, set)?;
    if rep.outcomes.iter().all(|o| o.report.is_ok()) {
        cache.put(key, SolverResult::Batch(rep.clone()));
    }
    Ok(rep)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gm_network::cases;

    fn key(net_hash: u64, params: u64) -> SolverCacheKey {
        SolverCacheKey {
            net_hash,
            kind: QueryKind::Acopf,
            params,
        }
    }

    fn pf_stub(iterations: usize) -> SolverResult {
        let net = cases::load(gm_network::CaseId::Ieee14);
        let mut rep =
            gm_powerflow::solve(&net, &gm_powerflow::PfOptions::default()).expect("converges");
        rep.iterations = iterations;
        SolverResult::Pf(rep)
    }

    #[test]
    fn same_network_same_key_different_rating_different_key() {
        let a = cases::load(gm_network::CaseId::Ieee14);
        let b = cases::load(gm_network::CaseId::Ieee14);
        let opts = gm_acopf::AcopfOptions::default();
        let ka = SolverCacheKey {
            net_hash: a.content_hash(),
            kind: QueryKind::Acopf,
            params: opts.fingerprint(),
        };
        let kb = SolverCacheKey {
            net_hash: b.content_hash(),
            kind: QueryKind::Acopf,
            params: opts.fingerprint(),
        };
        assert_eq!(ka, kb, "identical case loads must key identically");

        // Perturbing one line rating must change the key.
        let mut c = cases::load(gm_network::CaseId::Ieee14);
        c.branches[0].rating_mva += 1.0;
        let kc = SolverCacheKey {
            net_hash: c.content_hash(),
            kind: QueryKind::Acopf,
            params: opts.fingerprint(),
        };
        assert_ne!(ka, kc, "a one-line rating perturbation must miss");

        // Different solver options must also miss.
        let mut warm = gm_acopf::AcopfOptions::default();
        warm.warm_start = !warm.warm_start;
        let kw = SolverCacheKey {
            net_hash: a.content_hash(),
            kind: QueryKind::Acopf,
            params: warm.fingerprint(),
        };
        assert_ne!(ka, kw, "option changes must miss");

        // And the same inputs under a different query kind must miss.
        let kk = SolverCacheKey {
            kind: QueryKind::Scopf,
            ..ka
        };
        assert_ne!(ka, kk);
    }

    #[test]
    fn hit_miss_accounting_and_roundtrip() {
        let cache = SolverCache::new(8);
        assert!(cache.get(&key(1, 1)).is_none());
        cache.put(key(1, 1), pf_stub(3));
        match cache.get(&key(1, 1)) {
            Some(SolverResult::Pf(rep)) => assert_eq!(rep.iterations, 3),
            other => panic!("expected cached pf, got {other:?}"),
        }
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.inserts), (1, 1, 1));
    }

    #[test]
    fn lru_evicts_least_recently_used_first() {
        let cache = SolverCache::new(2);
        cache.put(key(1, 0), pf_stub(1));
        cache.put(key(2, 0), pf_stub(2));
        // Touch key 1 so key 2 becomes the LRU entry.
        assert!(cache.get(&key(1, 0)).is_some());
        cache.put(key(3, 0), pf_stub(3));
        assert_eq!(cache.len(), 2);
        assert!(cache.get(&key(2, 0)).is_none(), "LRU entry evicted");
        assert!(cache.get(&key(1, 0)).is_some(), "recently used survives");
        assert!(cache.get(&key(3, 0)).is_some());
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn eviction_order_follows_recency_not_insertion() {
        let cache = SolverCache::new(3);
        for i in 1..=3 {
            cache.put(key(i, 0), pf_stub(i as usize));
        }
        assert_eq!(
            cache
                .recency_order()
                .iter()
                .map(|k| k.net_hash)
                .collect::<Vec<_>>(),
            vec![1, 2, 3]
        );
        // Touching 1 moves it to most-recent; 2 is now the victim.
        cache.get(&key(1, 0));
        cache.put(key(4, 0), pf_stub(4));
        cache.put(key(5, 0), pf_stub(5));
        let have: Vec<u64> = cache.recency_order().iter().map(|k| k.net_hash).collect();
        assert_eq!(have, vec![1, 4, 5]);
        assert_eq!(cache.stats().evictions, 2);
    }

    #[test]
    fn overwrite_refreshes_recency_without_eviction() {
        let cache = SolverCache::new(2);
        cache.put(key(1, 0), pf_stub(1));
        cache.put(key(2, 0), pf_stub(2));
        cache.put(key(1, 0), pf_stub(10)); // overwrite, no eviction
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().evictions, 0);
        // Key 2 is now LRU.
        cache.put(key(3, 0), pf_stub(3));
        assert!(cache.get(&key(2, 0)).is_none());
        match cache.get(&key(1, 0)) {
            Some(SolverResult::Pf(rep)) => assert_eq!(rep.iterations, 10),
            other => panic!("expected overwritten pf, got {other:?}"),
        }
    }

    #[test]
    fn old_mix_collision_is_fixed() {
        // The pre-canonical key derivation xor-folded the screened flag
        // and the threshold bits into the fingerprint:
        //   old(fp, s, t) = (((fp ^ s) * P) ^ t.bits) * P
        // For any fingerprint and threshold t1, the screened key
        // old(fp, 1, t1) collides with the *full-sweep* key
        // old(fp, 0, t2) at t2.bits = t1.bits ^ ((fp^1)*P) ^ (fp*P):
        // a screened sweep could be served a cached full sweep (or vice
        // versa). The canonical length-prefixed encoding keeps the two
        // keys distinct.
        const P: u64 = 0x100000001b3;
        let old_mix = |fp: u64, screened: bool, t: f64| -> u64 {
            let mut h = fp;
            h ^= u64::from(screened);
            h = h.wrapping_mul(P);
            h ^= t.to_bits();
            h.wrapping_mul(P)
        };
        let fp = CaOptions::default().fingerprint();
        let t1 = 0.85f64;
        let t2 = f64::from_bits(t1.to_bits() ^ (fp ^ 1).wrapping_mul(P) ^ fp.wrapping_mul(P));
        assert_ne!(t1.to_bits(), t2.to_bits(), "a genuinely distinct threshold");
        assert_eq!(
            old_mix(fp, true, t1),
            old_mix(fp, false, t2),
            "the ad-hoc mix collapsed this screened/full pair"
        );
        assert_ne!(
            n1_params_fingerprint(fp, true, t1),
            n1_params_fingerprint(fp, false, t2),
            "the canonical encoding must separate it"
        );
        // And the canonical encoding still distinguishes the ordinary
        // neighbours: mode flips and threshold changes.
        assert_ne!(
            n1_params_fingerprint(fp, true, t1),
            n1_params_fingerprint(fp, false, t1)
        );
        assert_ne!(
            n1_params_fingerprint(fp, true, t1),
            n1_params_fingerprint(fp, true, 0.9)
        );
    }

    #[test]
    fn batch_naive_concat_collision_is_fixed() {
        use gm_powerflow::{Scenario, ScenarioSet};
        // A naive fingerprint that concatenates scenario labels without
        // length prefixes cannot tell ["ab","c"] from ["a","bc"]: the
        // byte streams are identical, so the keys collide and one
        // study's table would be served for the other.
        let a = ScenarioSet::new(vec![
            Scenario {
                label: "ab".into(),
                deltas: vec![],
            },
            Scenario {
                label: "c".into(),
                deltas: vec![],
            },
        ]);
        let b = ScenarioSet::new(vec![
            Scenario {
                label: "a".into(),
                deltas: vec![],
            },
            Scenario {
                label: "bc".into(),
                deltas: vec![],
            },
        ]);
        let naive = |set: &ScenarioSet| -> u64 {
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for sc in &set.scenarios {
                for &byte in sc.label.as_bytes() {
                    h ^= u64::from(byte);
                    h = h.wrapping_mul(0x0100_0000_01b3);
                }
            }
            h
        };
        assert_eq!(naive(&a), naive(&b), "the naive concat collapses the pair");
        let opts = PfOptions::default();
        assert_ne!(
            batch_params_fingerprint(&opts, &a),
            batch_params_fingerprint(&opts, &b),
            "the canonical length-prefixed encoding must separate it"
        );
        // Option changes must also miss: same set, different tolerance.
        let tight = PfOptions {
            tol_pu: 1e-10,
            ..PfOptions::default()
        };
        assert_ne!(
            batch_params_fingerprint(&opts, &a),
            batch_params_fingerprint(&tight, &a)
        );
        // And a delta-value change inside one scenario must miss.
        let mut c = a.clone();
        c.scenarios[0]
            .deltas
            .push(gm_powerflow::ScenarioDelta::ScaleAllLoads { factor: 1.1 });
        assert_ne!(
            batch_params_fingerprint(&opts, &a),
            batch_params_fingerprint(&opts, &c)
        );
    }

    #[test]
    fn batch_study_caches_clean_runs_and_recalls_them() {
        let net = cases::load(gm_network::CaseId::Ieee14);
        let cache = SolverCache::new(8);
        let opts = PfOptions::default();
        let set = gm_powerflow::ScenarioSet::load_sweep(0.9, 1.1, 5);
        let first = run_batch_cached(Some(&cache), &net, &opts, &set).unwrap();
        assert_eq!(cache.stats().inserts, 1, "clean batch is memoized");
        let second = run_batch_cached(Some(&cache), &net, &opts, &set).unwrap();
        assert_eq!(cache.stats().hits, 1);
        assert_eq!(format!("{second:?}"), format!("{first:?}"));
        // A different sweep over the same network and options misses.
        let other = gm_powerflow::ScenarioSet::load_sweep(0.8, 1.2, 5);
        let _ = run_batch_cached(Some(&cache), &net, &opts, &other).unwrap();
        assert_eq!(cache.stats().inserts, 2);
    }

    #[test]
    fn injected_cache_faults_force_resolve_and_poison_detection() {
        let net = cases::load(gm_network::CaseId::Ieee14);
        let cache = SolverCache::new(8);
        let opts = CaOptions::default();
        let warm = solve_base_cached(Some(&cache), &net, &opts).unwrap();
        assert_eq!(cache.stats().hits, 0);

        // Fault-free: the warmed entry hits and recalls identical bytes.
        let hit = solve_base_cached(Some(&cache), &net, &opts).unwrap();
        assert_eq!(cache.stats().hits, 1);
        assert_eq!(format!("{hit:?}"), format!("{warm:?}"));

        // CacheMiss then CachePoison: both force a re-solve; the poison
        // path additionally counts its detection. Results stay
        // byte-identical — recomputation is deterministic.
        let reg = gm_telemetry::Registry::new();
        let _t = reg.install();
        let inj = gm_faults::FaultInjector::scripted(vec![
            gm_faults::FaultRule::new("cache.get", gm_faults::FaultKind::CacheMiss, 0, 1),
            gm_faults::FaultRule::new("cache.get", gm_faults::FaultKind::CachePoison, 1, 1),
        ]);
        let _g = inj.install();
        let missed = solve_base_cached(Some(&cache), &net, &opts).unwrap();
        let poisoned = solve_base_cached(Some(&cache), &net, &opts).unwrap();
        assert_eq!(format!("{missed:?}"), format!("{warm:?}"));
        assert_eq!(format!("{poisoned:?}"), format!("{warm:?}"));
        assert_eq!(reg.counter_value("serve.cache.poison_detected"), 1);
        assert_eq!(inj.injected_total(), 2);
    }

    #[test]
    fn poison_detection_evicts_the_entry_for_concurrent_readers() {
        // Regression (found by gm-audit's swallowed-error lint): the
        // poison path used to do `let _ = cache.get(key)` — refreshing
        // the poisoned entry's recency and leaving it in the map, where
        // a concurrent reader without an installed injector would still
        // be served it. Recovery must evict.
        let cache = SolverCache::new(8);
        cache.put(key(1, 0), pf_stub(1));
        assert_eq!(cache.len(), 1);
        let inj = gm_faults::FaultInjector::scripted(vec![gm_faults::FaultRule::new(
            "cache.get",
            gm_faults::FaultKind::CachePoison,
            0,
            1,
        )]);
        let guard = inj.install();
        assert!(
            cache_lookup(&cache, &key(1, 0)).is_none(),
            "poisoned entry must not be served"
        );
        drop(guard);
        assert_eq!(cache.len(), 0, "poisoned entry must be evicted");
        assert!(
            cache.get(&key(1, 0)).is_none(),
            "a concurrent reader must re-solve, never see the poisoned bytes"
        );
    }

    #[test]
    fn remove_is_exact_and_idempotent() {
        let cache = SolverCache::new(4);
        cache.put(key(1, 0), pf_stub(1));
        cache.put(key(2, 0), pf_stub(2));
        assert!(cache.remove(&key(1, 0)));
        assert!(!cache.remove(&key(1, 0)), "second remove is a no-op");
        assert_eq!(cache.len(), 1);
        assert_eq!(
            cache.stats().evictions,
            0,
            "poison removal is not an LRU eviction"
        );
        assert_eq!(
            cache
                .recency_order()
                .iter()
                .map(|k| k.net_hash)
                .collect::<Vec<_>>(),
            vec![2],
            "recency order stays consistent with the map"
        );
    }

    #[test]
    fn telemetry_counters_mirror_stats() {
        let reg = gm_telemetry::Registry::new();
        let _g = reg.install();
        let cache = SolverCache::new(1);
        cache.get(&key(1, 0));
        cache.put(key(1, 0), pf_stub(1));
        cache.get(&key(1, 0));
        cache.put(key(2, 0), pf_stub(2)); // evicts key 1
        assert_eq!(reg.counter_value("serve.cache.misses"), 1);
        assert_eq!(reg.counter_value("serve.cache.hits"), 1);
        assert_eq!(reg.counter_value("serve.cache.inserts"), 2);
        assert_eq!(reg.counter_value("serve.cache.evictions"), 1);
    }
}
