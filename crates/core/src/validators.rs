//! Domain validators applied to every tool result (§3.1: "convergence
//! flags, power balance tolerance, operating limits, and sanity checks on
//! modified elements").

use gm_agents::{Severity, ValidationIssue, Validator};
use serde_json::Value;

/// Flags unconverged solver results.
pub struct ConvergenceValidator;

impl Validator for ConvergenceValidator {
    fn name(&self) -> &str {
        "convergence"
    }
    fn validate(&self, _tool: &str, result: &Value) -> Vec<ValidationIssue> {
        let mut issues = Vec::new();
        for key in ["solved", "converged"] {
            if result.get(key) == Some(&Value::Bool(false)) {
                issues.push(ValidationIssue {
                    severity: Severity::Error,
                    check: "convergence".into(),
                    message: format!("result reports {key} = false"),
                });
            }
        }
        issues
    }
}

/// Checks the reported power balance against the paper's 1e-4 p.u.
/// tolerance (0.01 MW on a 100 MVA base — warnings start at 0.1 MW).
pub struct PowerBalanceValidator {
    /// Warning threshold (MW).
    pub tolerance_mw: f64,
}

impl Default for PowerBalanceValidator {
    fn default() -> Self {
        PowerBalanceValidator { tolerance_mw: 0.1 }
    }
}

impl Validator for PowerBalanceValidator {
    fn name(&self) -> &str {
        "power_balance"
    }
    fn validate(&self, _tool: &str, result: &Value) -> Vec<ValidationIssue> {
        match result
            .get("power_balance_error_mw")
            .and_then(|v| v.as_f64())
        {
            Some(err) if err.abs() > self.tolerance_mw => vec![ValidationIssue {
                severity: Severity::Warning,
                check: "power_balance".into(),
                message: format!(
                    "power balance error {err:.3} MW exceeds the {} MW tolerance; verify load \
                     scaling and slack treatment",
                    self.tolerance_mw
                ),
            }],
            _ => vec![],
        }
    }
}

/// Flags voltage or thermal limit breaches in reported solutions.
pub struct OperatingLimitValidator {
    /// Voltage band (p.u.).
    pub vmin_pu: f64,
    /// Upper voltage bound (p.u.).
    pub vmax_pu: f64,
}

impl Default for OperatingLimitValidator {
    fn default() -> Self {
        OperatingLimitValidator {
            vmin_pu: 0.94,
            vmax_pu: 1.10,
        }
    }
}

impl Validator for OperatingLimitValidator {
    fn name(&self) -> &str {
        "operating_limits"
    }
    fn validate(&self, _tool: &str, result: &Value) -> Vec<ValidationIssue> {
        let mut issues = Vec::new();
        if let Some(v) = result.get("min_voltage_pu").and_then(|v| v.as_f64()) {
            if v < self.vmin_pu {
                issues.push(ValidationIssue {
                    severity: Severity::Warning,
                    check: "voltage_limits".into(),
                    message: format!("minimum voltage {v:.4} p.u. below {}", self.vmin_pu),
                });
            }
        }
        if let Some(v) = result.get("max_voltage_pu").and_then(|v| v.as_f64()) {
            if v > self.vmax_pu {
                issues.push(ValidationIssue {
                    severity: Severity::Warning,
                    check: "voltage_limits".into(),
                    message: format!("maximum voltage {v:.4} p.u. above {}", self.vmax_pu),
                });
            }
        }
        if let Some(l) = result
            .get("max_thermal_loading_pct")
            .and_then(|v| v.as_f64())
        {
            if l > 100.5 {
                issues.push(ValidationIssue {
                    severity: Severity::Warning,
                    check: "thermal_limits".into(),
                    message: format!("branch loading {l:.1}% exceeds rating"),
                });
            }
        }
        issues
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    #[test]
    fn convergence_flags_false() {
        let v = ConvergenceValidator;
        assert!(v.validate("x", &json!({"solved": true})).is_empty());
        let issues = v.validate("x", &json!({"solved": false}));
        assert_eq!(issues.len(), 1);
        assert_eq!(issues[0].severity, Severity::Error);
        let issues = v.validate("x", &json!({"converged": false}));
        assert_eq!(issues.len(), 1);
    }

    #[test]
    fn power_balance_threshold() {
        let v = PowerBalanceValidator::default();
        assert!(v
            .validate("x", &json!({"power_balance_error_mw": 0.01}))
            .is_empty());
        let issues = v.validate("x", &json!({"power_balance_error_mw": 373.6}));
        assert_eq!(issues.len(), 1);
        assert!(issues[0].message.contains("373.6"));
    }

    #[test]
    fn operating_limits() {
        let v = OperatingLimitValidator::default();
        assert!(v
            .validate(
                "x",
                &json!({"min_voltage_pu": 0.99, "max_voltage_pu": 1.05, "max_thermal_loading_pct": 80.0})
            )
            .is_empty());
        let issues = v.validate(
            "x",
            &json!({"min_voltage_pu": 0.90, "max_voltage_pu": 1.12, "max_thermal_loading_pct": 120.0}),
        );
        assert_eq!(issues.len(), 3);
    }

    #[test]
    fn absent_fields_are_fine() {
        let v = OperatingLimitValidator::default();
        assert!(v.validate("x", &json!({"anything": 1})).is_empty());
    }
}
