//! The ACOPF agent's function tools (Appendix B.3.1):
//! `solve_acopf_case`, `modify_bus_load`, `get_network_status`.
//!
//! Every tool reads and writes the shared
//! [`SessionContext`](crate::session::SessionContext), returns a
//! schema-validated JSON object whose field names are the semantic
//! anchors the planner narrates from (`objective_cost`,
//! `min_voltage_pu`, …), and deposits typed artifacts for other agents.

use crate::quality;
use crate::recovery::{solve_acopf_recovered, solve_scopf_recovered};
use crate::session::SharedSession;
use gm_acopf::{AcopfOptions, AcopfSolution, ScopfOptions};
use gm_agents::{Field, FnTool, Schema, ToolError, ToolSpec, VirtualClock};
use gm_network::Modification;
use serde_json::{json, Value};

/// JSON summary of an ACOPF solution (the `ACOPFSolution` wire shape).
pub fn solution_to_json(sol: &AcopfSolution, quality_overall: f64) -> Value {
    let largest_units_mw = {
        let mut d = sol.gen_dispatch_mw.clone();
        d.sort_by(|a, b| b.total_cmp(a));
        d.truncate(5);
        d
    };
    json!({
        "case_name": sol.case_name,
        "solved": sol.solved,
        "objective_cost": sol.objective_cost,
        "total_generation_mw": sol.total_generation_mw,
        "total_load_mw": sol.total_load_mw,
        "losses_mw": sol.losses_mw,
        "min_voltage_pu": sol.min_voltage_pu,
        "max_voltage_pu": sol.max_voltage_pu,
        "max_thermal_loading_pct": sol.max_thermal_loading_pct,
        "iterations": sol.iterations,
        "solve_time_s": sol.solve_time_s,
        "binding_constraints": sol.binding_constraints,
        "power_balance_error_mw": sol.power_balance_error_mw(),
        "quality_overall": quality_overall,
        "n_generators": sol.gen_dispatch_mw.len(),
        "largest_units_mw": largest_units_mw,
        "lmp_min": sol.bus_lmp.iter().cloned().fold(f64::INFINITY, f64::min),
        "lmp_max": sol.bus_lmp.iter().cloned().fold(0.0f64, f64::max),
    })
}

fn solution_output_schema() -> Schema {
    Schema::Object {
        fields: vec![
            Field::required("case_name", Schema::string(), "case identifier"),
            Field::required("solved", Schema::Bool, "convergence flag"),
            Field::required(
                "objective_cost",
                Schema::number(),
                "total generation cost ($/h)",
            ),
            Field::required("total_generation_mw", Schema::number(), "dispatched MW"),
            Field::required("total_load_mw", Schema::number(), "system demand MW"),
            Field::required("losses_mw", Schema::number(), "network losses MW"),
            Field::required("min_voltage_pu", Schema::number(), "lowest bus voltage"),
            Field::required("max_voltage_pu", Schema::number(), "highest bus voltage"),
            Field::required(
                "max_thermal_loading_pct",
                Schema::number(),
                "worst branch loading",
            ),
            Field::required("iterations", Schema::integer(), "IPM iterations"),
            Field::required(
                "quality_overall",
                Schema::number_range(0.0, 10.0),
                "0-10 score",
            ),
        ],
        closed: false,
    }
}

/// `solve_acopf_case` — load and solve an IEEE case.
pub fn solve_acopf_case_tool(session: SharedSession, clock: VirtualClock) -> FnTool {
    FnTool::new(
        ToolSpec {
            name: "solve_acopf_case".into(),
            description: "Load a standard IEEE test case (14, 30, 57, 118, 300 bus) and solve the AC optimal power flow, returning cost, dispatch, voltages, and loading.".into(),
            input: Schema::object(vec![Field::required(
                "case_name",
                Schema::string(),
                "case reference, e.g. 'case118' or 'IEEE 118'",
            )]),
            output: solution_output_schema(),
        },
        move |args| {
            let name = args["case_name"].as_str().unwrap_or_default();
            let (net, confidence) = session.load_case(name).map_err(|e| ToolError::Execution {
                message: e.to_string(),
                recoverable: false,
            })?;
            let (sol, degraded) = solve_acopf_recovered(
                session.solver_cache.as_ref(),
                &net,
                &AcopfOptions::default(),
            )
            .map_err(|e| ToolError::Execution {
                message: e.to_string(),
                recoverable: true,
            })?;
            let q = quality::assess(&net, &sol);
            session.put_acopf(sol.clone(), clock.now());
            let mut out = solution_to_json(&sol, q.overall_score);
            if let Some(c) = degraded {
                out["degraded_caveat"] = json!(c);
            }
            out["identification_confidence"] = json!(confidence);
            out["network_summary"] = serde_json::to_value(net.summary()).unwrap();
            Ok(out)
        },
    )
}

/// `modify_bus_load` — change a bus load and re-solve.
pub fn modify_bus_load_tool(session: SharedSession, clock: VirtualClock) -> FnTool {
    FnTool::new(
        ToolSpec {
            name: "modify_bus_load".into(),
            description: "Set the active (and optionally reactive) demand at a bus of the active case, then re-solve the ACOPF and report the economic impact.".into(),
            input: Schema::object(vec![
                Field::required("bus_id", Schema::Integer { min: Some(1), max: None }, "external bus number"),
                Field::required(
                    "p_mw",
                    Schema::number_range(0.0, 100_000.0),
                    "new active demand (MW)",
                ),
                Field::optional("q_mvar", Schema::number(), "new reactive demand (MVAr); omitted keeps the power factor"),
            ]),
            output: Schema::Object {
                fields: vec![
                    Field::required("solved", Schema::Bool, "convergence flag"),
                    Field::required("objective_cost", Schema::number(), "new cost ($/h)"),
                    Field::required("previous_cost", Schema::number(), "cost before the change ($/h)"),
                    Field::required("cost_delta", Schema::number(), "cost change ($/h)"),
                ],
                closed: false,
            },
        },
        move |args| {
            let bus_id = args["bus_id"].as_u64().unwrap() as u32;
            let p_mw = args["p_mw"].as_f64().unwrap();
            let q_mvar = args.get("q_mvar").and_then(|v| v.as_f64());
            let previous_cost = session
                .any_acopf()
                .map(|(s, _)| s.objective_cost)
                .unwrap_or(0.0);
            session
                .apply(Modification::SetBusLoad {
                    bus_id,
                    p_mw,
                    q_mvar,
                })
                .map_err(|e| ToolError::Execution {
                    message: e.to_string(),
                    recoverable: false,
                })?;
            let net = session.current_network().map_err(|e| ToolError::Execution {
                message: e.to_string(),
                recoverable: false,
            })?;
            let (sol, degraded) = solve_acopf_recovered(
                session.solver_cache.as_ref(),
                &net,
                &AcopfOptions::default(),
            )
            .map_err(|e| ToolError::Execution {
                message: format!("re-solve after modification failed: {e}"),
                recoverable: true,
            })?;
            let q = quality::assess(&net, &sol);
            session.put_acopf(sol.clone(), clock.now());
            let mut out = solution_to_json(&sol, q.overall_score);
            if let Some(c) = degraded {
                out["degraded_caveat"] = json!(c);
            }
            out["previous_cost"] = json!(previous_cost);
            out["cost_delta"] = json!(sol.objective_cost - previous_cost);
            out["modified_bus"] = json!(bus_id);
            Ok(out)
        },
    )
}

/// `modify_gen_limits` — change a unit's active power limits and
/// re-solve (Fig. 4 capability 2: "modifying system parameters (loads,
/// generation limits, etc.) and re-solving").
pub fn modify_gen_limits_tool(session: SharedSession, clock: VirtualClock) -> FnTool {
    FnTool::new(
        ToolSpec {
            name: "modify_gen_limits".into(),
            description: "Set the active power limits of the generator(s) at a bus of the active case, then re-solve the ACOPF and report the economic impact.".into(),
            input: Schema::object(vec![
                Field::required("bus_id", Schema::Integer { min: Some(1), max: None }, "external bus number of the unit"),
                Field::required("p_min_mw", Schema::number_range(0.0, 100_000.0), "new minimum output (MW)"),
                Field::required("p_max_mw", Schema::number_range(0.0, 100_000.0), "new maximum output (MW)"),
            ]),
            output: Schema::Object {
                fields: vec![
                    Field::required("solved", Schema::Bool, "convergence flag"),
                    Field::required("objective_cost", Schema::number(), "new cost ($/h)"),
                    Field::required("cost_delta", Schema::number(), "cost change ($/h)"),
                ],
                closed: false,
            },
        },
        move |args| {
            let bus_id = args["bus_id"].as_u64().unwrap() as u32;
            let p_min = args["p_min_mw"].as_f64().unwrap();
            let p_max = args["p_max_mw"].as_f64().unwrap();
            let net0 = session.current_network().map_err(|e| ToolError::Execution {
                message: e.to_string(),
                recoverable: false,
            })?;
            let bus = net0.bus_index(bus_id).ok_or_else(|| ToolError::Execution {
                message: format!("bus {bus_id} does not exist in {}", net0.name),
                recoverable: false,
            })?;
            let gens: Vec<usize> = net0
                .gens
                .iter()
                .enumerate()
                .filter(|(_, g)| g.bus == bus)
                .map(|(i, _)| i)
                .collect();
            if gens.is_empty() {
                return Err(ToolError::Execution {
                    message: format!("bus {bus_id} hosts no generator"),
                    recoverable: false,
                });
            }
            let previous_cost = session
                .any_acopf()
                .map(|(s, _)| s.objective_cost)
                .unwrap_or(0.0);
            for gi in &gens {
                session
                    .apply(Modification::SetGenLimits {
                        index: *gi,
                        p_min_mw: p_min,
                        p_max_mw: p_max,
                    })
                    .map_err(|e| ToolError::Execution {
                        message: e.to_string(),
                        recoverable: false,
                    })?;
            }
            let net = session.current_network().map_err(|e| ToolError::Execution {
                message: e.to_string(),
                recoverable: false,
            })?;
            let (sol, degraded) = solve_acopf_recovered(
                session.solver_cache.as_ref(),
                &net,
                &AcopfOptions::default(),
            )
            .map_err(|e| ToolError::Execution {
                message: format!("re-solve after limit change failed: {e}"),
                recoverable: true,
            })?;
            let q = quality::assess(&net, &sol);
            session.put_acopf(sol.clone(), clock.now());
            let mut out = solution_to_json(&sol, q.overall_score);
            if let Some(c) = degraded {
                out["degraded_caveat"] = json!(c);
            }
            out["previous_cost"] = json!(previous_cost);
            out["cost_delta"] = json!(sol.objective_cost - previous_cost);
            out["modified_bus"] = json!(bus_id);
            out["units_modified"] = json!(gens.len());
            Ok(out)
        },
    )
}

/// `solve_security_constrained` — preventive SCOPF on the active case.
///
/// Registered beyond the paper's original three tools to exercise the
/// §3.1 claim that "new analytical tools can be registered with a schema;
/// the planner notices capabilities without refactoring core logic".
pub fn solve_security_constrained_tool(session: SharedSession, clock: VirtualClock) -> FnTool {
    FnTool::new(
        ToolSpec {
            name: "solve_security_constrained".into(),
            description: "Solve the preventive security-constrained OPF (SCOPF) for the active case: the cheapest dispatch whose LODF-estimated post-contingency flows respect emergency ratings. Reports the security premium over the economic dispatch.".into(),
            input: Schema::object(vec![Field::optional(
                "case_name",
                Schema::string(),
                "case to load when none is active",
            )]),
            output: Schema::Object {
                fields: vec![
                    Field::required("solved", Schema::Bool, "convergence flag"),
                    Field::required("objective_cost", Schema::number(), "secure dispatch cost ($/h)"),
                    Field::required("economic_cost", Schema::number(), "unconstrained optimum ($/h)"),
                    Field::required("security_premium", Schema::number(), "cost of security ($/h)"),
                    Field::required(
                        "n_security_constraints",
                        Schema::integer(),
                        "screened post-contingency constraints",
                    ),
                ],
                closed: false,
            },
        },
        move |args| {
            if let Some(name) = args.get("case_name").and_then(|v| v.as_str()) {
                session.load_case(name).map_err(|e| ToolError::Execution {
                    message: e.to_string(),
                    recoverable: false,
                })?;
            }
            let net = session.current_network().map_err(|e| ToolError::Execution {
                message: e.to_string(),
                recoverable: false,
            })?;
            let (scopf, degraded) = solve_scopf_recovered(
                session.solver_cache.as_ref(),
                &net,
                &ScopfOptions::default(),
            )
            .map_err(|e| ToolError::Execution {
                message: e.to_string(),
                recoverable: true,
            })?;
            let q = quality::assess(&net, &scopf.solution);
            session.put_acopf(scopf.solution.clone(), clock.now());
            let mut out = solution_to_json(&scopf.solution, q.overall_score);
            if let Some(c) = degraded {
                out["degraded_caveat"] = json!(c);
            }
            out["economic_cost"] = json!(scopf.economic_cost);
            out["security_premium"] = json!(scopf.security_premium);
            out["n_security_constraints"] = json!(scopf.n_security_constraints);
            Ok(out)
        },
    )
}

/// `get_network_status` — current network and solution status.
pub fn get_network_status_tool(session: SharedSession, _clock: VirtualClock) -> FnTool {
    FnTool::new(
        ToolSpec {
            name: "get_network_status".into(),
            description: "Report the active case, applied modifications, and whether a fresh ACOPF solution exists.".into(),
            input: Schema::object(vec![]),
            output: Schema::Object {
                fields: vec![Field::required("has_active_case", Schema::Bool, "whether a case is loaded")],
                closed: false,
            },
        },
        move |_args| {
            let Some(case) = session.active_case() else {
                return Ok(json!({
                    "has_active_case": false,
                    "message": "no case loaded yet",
                }));
            };
            let net = session.current_network().map_err(|e| ToolError::Execution {
                message: e.to_string(),
                recoverable: false,
            })?;
            let (solution, stale) = match session.any_acopf() {
                Some((sol, stale)) => (Some(solution_to_json(&sol, 0.0)), stale),
                None => (None, false),
            };
            Ok(json!({
                "has_active_case": true,
                "active_case": case,
                "network_summary": serde_json::to_value(net.summary()).unwrap(),
                "modifications": session.diff_descriptions(),
                "has_solution": solution.is_some(),
                "solution_stale": stale,
                "solution": solution,
            }))
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::SessionContext;
    use gm_agents::ToolRegistry;

    fn registry() -> (SharedSession, ToolRegistry) {
        let session = SessionContext::new();
        let clock = VirtualClock::new();
        let mut reg = ToolRegistry::new(clock.clone());
        reg.register(solve_acopf_case_tool(session.clone(), clock.clone()));
        reg.register(modify_bus_load_tool(session.clone(), clock.clone()));
        reg.register(get_network_status_tool(session.clone(), clock));
        (session, reg)
    }

    #[test]
    fn solve_tool_returns_validated_solution() {
        let (session, reg) = registry();
        let out = reg
            .invoke("solve_acopf_case", &json!({"case_name": "case14"}))
            .unwrap();
        assert_eq!(out["solved"], json!(true));
        assert!(out["objective_cost"].as_f64().unwrap() > 8000.0);
        assert!(out["quality_overall"].as_f64().unwrap() > 5.0);
        assert_eq!(out["identification_confidence"], json!(1.0));
        assert!(session.fresh_acopf().is_some());
    }

    #[test]
    fn modify_tool_reports_cost_delta() {
        let (_s, reg) = registry();
        reg.invoke("solve_acopf_case", &json!({"case_name": "case14"}))
            .unwrap();
        let out = reg
            .invoke("modify_bus_load", &json!({"bus_id": 10, "p_mw": 50.0}))
            .unwrap();
        assert_eq!(out["solved"], json!(true));
        assert!(
            out["cost_delta"].as_f64().unwrap() > 0.0,
            "load up, cost up"
        );
        assert_eq!(out["modified_bus"], json!(10));
    }

    #[test]
    fn modify_without_case_fails_cleanly() {
        let (_s, reg) = registry();
        let err = reg
            .invoke("modify_bus_load", &json!({"bus_id": 1, "p_mw": 5.0}))
            .unwrap_err();
        assert!(err.to_string().contains("no case loaded"));
    }

    #[test]
    fn status_tool_reflects_session() {
        let (_s, reg) = registry();
        let out = reg.invoke("get_network_status", &json!({})).unwrap();
        assert_eq!(out["has_active_case"], json!(false));
        reg.invoke("solve_acopf_case", &json!({"case_name": "ieee 30"}))
            .unwrap();
        reg.invoke("modify_bus_load", &json!({"bus_id": 5, "p_mw": 99.0}))
            .unwrap();
        let out = reg.invoke("get_network_status", &json!({})).unwrap();
        assert_eq!(out["has_active_case"], json!(true));
        assert_eq!(out["active_case"], json!("case30"));
        assert_eq!(out["modifications"].as_array().unwrap().len(), 1);
        assert_eq!(out["has_solution"], json!(true));
        assert_eq!(out["solution_stale"], json!(false));
    }

    #[test]
    fn unknown_case_is_nonrecoverable_error() {
        let (_s, reg) = registry();
        let err = reg
            .invoke("solve_acopf_case", &json!({"case_name": "case9000"}))
            .unwrap_err();
        assert!(err.to_string().contains("unknown case"));
    }

    #[test]
    fn bad_args_rejected_by_schema() {
        let (_s, reg) = registry();
        let err = reg
            .invoke("modify_bus_load", &json!({"bus_id": 1, "p_mw": -5.0}))
            .unwrap_err();
        assert!(matches!(err, ToolError::InvalidArgs { .. }));
    }
}
