//! # gm-network
//!
//! Power system network modeling for GridMind-RS — the role PandaPower's
//! data layer plays for the paper.
//!
//! - [`model`] — the typed `PowerSystem` data model: buses, loads,
//!   generators with polynomial costs, branches (lines / transformers),
//!   shunts, and validation.
//! - [`audit`] — the `GridLint` invariant pass behind `gm-audit
//!   lint-case`: connectivity, reference-bus, limit-ordering, impedance,
//!   per-unit base, and dispatch-feasibility rules with structured
//!   findings; `Network::validate` is its legacy-error projection.
//! - [`ybus`] — complex bus admittance matrix assembly and branch-flow
//!   evaluation (pi-model with off-nominal taps and phase shift).
//! - [`topology`] — connectivity, island detection, bridge analysis.
//! - [`diff`] — incremental, auditable network modifications with a
//!   replayable, hashable diff log (paper §3.4).
//! - [`caseformat`] — plain-text case format with parser and serializer.
//! - [`matpower`] — MATPOWER `.m` case file importer (format version 2),
//!   so authentic archive data can be loaded directly.
//! - [`cases`] — the IEEE test case library (Table 2 of the paper) with
//!   fuzzy case identification; IEEE 14/30 are embedded authentic data,
//!   IEEE 57/118/300 are deterministic synthetic reconstructions.
//! - [`synth`] — the synthetic case generator with DC-calibrated
//!   impedances and N-1-aware thermal ratings.
//!
//! ```
//! use gm_network::{cases, CaseId, YBus};
//!
//! let net = cases::load(CaseId::Ieee14);
//! assert_eq!(net.n_bus(), 14);
//! assert!((net.total_load_mw() - 259.0).abs() < 1e-9);
//! let ybus = YBus::assemble(&net);
//! assert_eq!(ybus.matrix.shape(), (14, 14));
//! ```

pub mod audit;
pub mod caseformat;
pub mod cases;
pub mod diff;
pub mod matpower;
pub mod model;
pub mod scale;
pub mod synth;
pub mod topology;
pub mod ybus;

pub use audit::{AuditFinding, GridLint, Severity};
pub use caseformat::{CaseError, CaseErrorKind};
pub use cases::{identify_case, load_case, CaseId};
pub use diff::{DiffLog, Modification};
pub use matpower::{parse_matpower, SAMPLE_CASE9};
pub use model::{
    Branch, BranchKind, Bus, BusKind, GenCost, Generator, Load, ModelError, Network,
    NetworkSummary, Shunt,
};
pub use scale::{generate_scale, identify_scale, load_scale, ScaleId, ScaleSpec};
pub use synth::SynthError;
pub use ybus::YBus;
