//! Typed power system network model.
//!
//! This is the `PowerSystem` data model from the paper's Appendix C: buses,
//! generators, loads, branches (lines and transformers), shunts, and case
//! metadata, with strong typing and validation in place of loose
//! dictionaries. All electrical quantities are stored in the units the
//! industry uses (MW / MVAr / per-unit impedance on the system MVA base);
//! solver crates convert as needed.

use serde::{Deserialize, Serialize};

/// Role of a bus in the power flow formulation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum BusKind {
    /// Reference (slack) bus: fixed voltage magnitude and angle.
    Slack,
    /// Generator (PV) bus: fixed active injection and voltage magnitude.
    Pv,
    /// Load (PQ) bus: fixed active and reactive injection.
    Pq,
}

/// A network node.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Bus {
    /// External bus number (as printed in IEEE case listings, 1-based).
    pub id: u32,
    /// Human-readable name.
    pub name: String,
    /// Power-flow role.
    pub kind: BusKind,
    /// Initial / scheduled voltage magnitude (p.u.).
    pub vm_pu: f64,
    /// Initial voltage angle (degrees).
    pub va_deg: f64,
    /// Nominal voltage (kV), informational.
    pub base_kv: f64,
    /// Lower operating voltage limit (p.u.).
    pub vmin_pu: f64,
    /// Upper operating voltage limit (p.u.).
    pub vmax_pu: f64,
    /// Area / zone tag.
    pub area: u32,
}

impl Bus {
    /// A PQ bus with unit voltage and ±6 % limits — the common default.
    pub fn pq(id: u32, base_kv: f64) -> Self {
        Bus {
            id,
            name: format!("bus{id}"),
            kind: BusKind::Pq,
            vm_pu: 1.0,
            va_deg: 0.0,
            base_kv,
            vmin_pu: 0.94,
            vmax_pu: 1.06,
            area: 1,
        }
    }
}

/// A constant-power load.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Load {
    /// Internal index of the bus this load is attached to.
    pub bus: usize,
    /// Active demand (MW).
    pub p_mw: f64,
    /// Reactive demand (MVAr).
    pub q_mvar: f64,
    /// In-service flag.
    pub in_service: bool,
}

/// Polynomial generation cost `c2·P² + c1·P + c0` with `P` in MW, cost in
/// $/h.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct GenCost {
    /// Quadratic coefficient ($/MW²h).
    pub c2: f64,
    /// Linear coefficient ($/MWh).
    pub c1: f64,
    /// Constant term ($/h).
    pub c0: f64,
}

impl GenCost {
    /// Cost of producing `p_mw` for one hour.
    pub fn eval(&self, p_mw: f64) -> f64 {
        self.c2 * p_mw * p_mw + self.c1 * p_mw + self.c0
    }

    /// Marginal cost d(cost)/dP at `p_mw` ($/MWh).
    pub fn marginal(&self, p_mw: f64) -> f64 {
        2.0 * self.c2 * p_mw + self.c1
    }
}

/// A dispatchable generating unit.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Generator {
    /// Internal index of the connection bus.
    pub bus: usize,
    /// Scheduled / initial active output (MW).
    pub p_mw: f64,
    /// Initial reactive output (MVAr).
    pub q_mvar: f64,
    /// Voltage setpoint (p.u.) maintained at the connection bus.
    pub vm_setpoint_pu: f64,
    /// Minimum active output (MW).
    pub p_min_mw: f64,
    /// Maximum active output (MW).
    pub p_max_mw: f64,
    /// Minimum reactive output (MVAr).
    pub q_min_mvar: f64,
    /// Maximum reactive output (MVAr).
    pub q_max_mvar: f64,
    /// In-service flag.
    pub in_service: bool,
    /// Production cost curve.
    pub cost: GenCost,
}

/// Whether a branch is a plain AC line or a (tap-changing) transformer.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BranchKind {
    /// Overhead line / cable at a single voltage level.
    Line,
    /// Two-winding transformer (tap ratio and phase shift meaningful).
    Transformer,
}

/// A series branch modelled as the standard pi-equivalent with off-nominal
/// tap on the *from* side.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Branch {
    /// Internal index of the from-bus.
    pub from_bus: usize,
    /// Internal index of the to-bus.
    pub to_bus: usize,
    /// Series resistance (p.u. on system base).
    pub r_pu: f64,
    /// Series reactance (p.u.).
    pub x_pu: f64,
    /// Total line-charging susceptance (p.u.).
    pub b_pu: f64,
    /// Off-nominal tap ratio (1.0 for lines).
    pub tap: f64,
    /// Phase shift (degrees).
    pub shift_deg: f64,
    /// Thermal rating (MVA); `0.0` means unlimited/unrated.
    pub rating_mva: f64,
    /// In-service flag.
    pub in_service: bool,
    /// Line vs transformer.
    pub kind: BranchKind,
}

impl Branch {
    /// A plain in-service line.
    pub fn line(from_bus: usize, to_bus: usize, r: f64, x: f64, b: f64, rating: f64) -> Self {
        Branch {
            from_bus,
            to_bus,
            r_pu: r,
            x_pu: x,
            b_pu: b,
            tap: 1.0,
            shift_deg: 0.0,
            rating_mva: rating,
            in_service: true,
            kind: BranchKind::Line,
        }
    }

    /// An in-service transformer with the given off-nominal tap.
    pub fn transformer(
        from_bus: usize,
        to_bus: usize,
        r: f64,
        x: f64,
        tap: f64,
        rating: f64,
    ) -> Self {
        Branch {
            from_bus,
            to_bus,
            r_pu: r,
            x_pu: x,
            b_pu: 0.0,
            tap,
            shift_deg: 0.0,
            rating_mva: rating,
            in_service: true,
            kind: BranchKind::Transformer,
        }
    }
}

/// A fixed shunt (e.g. capacitor bank), specified as the MW / MVAr it
/// injects at 1.0 p.u. voltage (generator sign convention: positive
/// `b_mvar` injects reactive power).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Shunt {
    /// Internal index of the bus.
    pub bus: usize,
    /// Active consumption at 1 p.u. (MW); positive consumes.
    pub g_mw: f64,
    /// Reactive injection at 1 p.u. (MVAr); positive injects.
    pub b_mvar: f64,
    /// In-service flag.
    pub in_service: bool,
}

/// Validation failure for a [`Network`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum ModelError {
    /// No slack bus is defined.
    NoSlack,
    /// More than one slack bus is defined.
    MultipleSlack {
        /// External ids of the offending buses.
        buses: Vec<u32>,
    },
    /// Duplicate external bus id.
    DuplicateBusId {
        /// The repeated id.
        id: u32,
    },
    /// An element references a bus index out of range.
    DanglingReference {
        /// Element description (e.g. "gen 3").
        element: String,
        /// The invalid internal bus index.
        bus: usize,
    },
    /// A branch has non-positive reactance magnitude.
    DegenerateBranch {
        /// Branch index.
        index: usize,
    },
    /// A generator has inconsistent limits (min > max).
    BadGenLimits {
        /// Generator index.
        index: usize,
    },
    /// A bus has inconsistent voltage limits.
    BadVoltageLimits {
        /// External bus id.
        id: u32,
    },
    /// The in-service network is not fully connected.
    Islanded {
        /// Number of connected components.
        components: usize,
    },
}

impl std::fmt::Display for ModelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ModelError::NoSlack => write!(f, "network has no slack bus"),
            ModelError::MultipleSlack { buses } => {
                write!(f, "network has multiple slack buses: {buses:?}")
            }
            ModelError::DuplicateBusId { id } => write!(f, "duplicate bus id {id}"),
            ModelError::DanglingReference { element, bus } => {
                write!(f, "{element} references nonexistent bus index {bus}")
            }
            ModelError::DegenerateBranch { index } => {
                write!(f, "branch {index} has |x| too small")
            }
            ModelError::BadGenLimits { index } => {
                write!(f, "generator {index} has min limit above max limit")
            }
            ModelError::BadVoltageLimits { id } => {
                write!(f, "bus {id} has vmin above vmax")
            }
            ModelError::Islanded { components } => {
                write!(f, "in-service network splits into {components} islands")
            }
        }
    }
}

impl std::error::Error for ModelError {}

/// A complete power system case.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Network {
    /// Case name (e.g. "IEEE 118-bus system").
    pub name: String,
    /// System MVA base.
    pub base_mva: f64,
    /// Buses, in internal index order.
    pub buses: Vec<Bus>,
    /// Loads.
    pub loads: Vec<Load>,
    /// Generators.
    pub gens: Vec<Generator>,
    /// Branches (lines and transformers).
    pub branches: Vec<Branch>,
    /// Fixed shunts.
    pub shunts: Vec<Shunt>,
}

impl Network {
    /// An empty network on a 100 MVA base.
    pub fn new(name: impl Into<String>) -> Self {
        Network {
            name: name.into(),
            base_mva: 100.0,
            buses: Vec::new(),
            loads: Vec::new(),
            gens: Vec::new(),
            branches: Vec::new(),
            shunts: Vec::new(),
        }
    }

    /// Number of buses.
    pub fn n_bus(&self) -> usize {
        self.buses.len()
    }

    /// Internal index of the bus with external id `id`.
    pub fn bus_index(&self, id: u32) -> Option<usize> {
        self.buses.iter().position(|b| b.id == id)
    }

    /// The slack bus internal index, if exactly one exists.
    pub fn slack(&self) -> Option<usize> {
        let mut it = self
            .buses
            .iter()
            .enumerate()
            .filter(|(_, b)| b.kind == BusKind::Slack);
        match (it.next(), it.next()) {
            (Some((i, _)), None) => Some(i),
            _ => None,
        }
    }

    /// Total in-service active demand (MW).
    pub fn total_load_mw(&self) -> f64 {
        self.loads
            .iter()
            .filter(|l| l.in_service)
            .map(|l| l.p_mw)
            .sum()
    }

    /// Total in-service reactive demand (MVAr).
    pub fn total_load_mvar(&self) -> f64 {
        self.loads
            .iter()
            .filter(|l| l.in_service)
            .map(|l| l.q_mvar)
            .sum()
    }

    /// Total in-service generation capacity (MW).
    pub fn total_gen_capacity_mw(&self) -> f64 {
        self.gens
            .iter()
            .filter(|g| g.in_service)
            .map(|g| g.p_max_mw)
            .sum()
    }

    /// Count of in-service AC lines.
    pub fn n_lines(&self) -> usize {
        self.branches
            .iter()
            .filter(|b| b.kind == BranchKind::Line)
            .count()
    }

    /// Count of transformers.
    pub fn n_transformers(&self) -> usize {
        self.branches
            .iter()
            .filter(|b| b.kind == BranchKind::Transformer)
            .count()
    }

    /// Net scheduled injection at every bus in MW/MVAr (generation minus
    /// load), ignoring shunts. Used as the starting point for solvers.
    pub fn scheduled_injections(&self) -> (Vec<f64>, Vec<f64>) {
        let n = self.n_bus();
        let mut p = vec![0.0; n];
        let mut q = vec![0.0; n];
        for g in self.gens.iter().filter(|g| g.in_service) {
            p[g.bus] += g.p_mw;
            q[g.bus] += g.q_mvar;
        }
        for l in self.loads.iter().filter(|l| l.in_service) {
            p[l.bus] -= l.p_mw;
            q[l.bus] -= l.q_mvar;
        }
        (p, q)
    }

    /// Generators attached to bus `bus` (in-service only).
    pub fn gens_at(&self, bus: usize) -> impl Iterator<Item = (usize, &Generator)> {
        self.gens
            .iter()
            .enumerate()
            .filter(move |(_, g)| g.bus == bus && g.in_service)
    }

    /// Structural and electrical validation. Returns all problems found.
    ///
    /// Delegates to the [`GridLint`](crate::audit::GridLint) audit pass
    /// and projects its findings onto the legacy [`ModelError`] shape;
    /// run the pass directly via [`crate::audit::GridLint::audit`] for
    /// the full finding list including warnings.
    pub fn validate(&self) -> Result<(), Vec<ModelError>> {
        crate::audit::GridLint::default().check_model(self)
    }

    /// Deterministic content hash of the full electrical model (FNV-1a
    /// over the canonical serde serialization). Two networks hash equal
    /// iff every bus, load, generator, branch, shunt, and rating is
    /// identical — the network half of cross-session solver-cache keys
    /// (gm-serve): any parameter perturbation, e.g. a single line
    /// rating, produces a different hash and therefore a cache miss.
    pub fn content_hash(&self) -> u64 {
        let bytes = serde_json::to_vec(self).unwrap_or_default();
        let mut h: u64 = 0xcbf29ce484222325;
        for b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        h
    }

    /// One-line inventory summary (the paper's "network summary" log line).
    pub fn summary(&self) -> NetworkSummary {
        NetworkSummary {
            case_name: self.name.clone(),
            buses: self.n_bus(),
            generators: self.gens.len(),
            loads: self.loads.len(),
            lines: self.n_lines(),
            transformers: self.n_transformers(),
            total_load_mw: self.total_load_mw(),
            total_gen_capacity_mw: self.total_gen_capacity_mw(),
        }
    }
}

/// Inventory counts for a case (Table 2 of the paper).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct NetworkSummary {
    /// Case name.
    pub case_name: String,
    /// Bus count.
    pub buses: usize,
    /// Generator count.
    pub generators: usize,
    /// Load count.
    pub loads: usize,
    /// AC line count.
    pub lines: usize,
    /// Transformer count.
    pub transformers: usize,
    /// Total active demand (MW).
    pub total_load_mw: f64,
    /// Total generation capacity (MW).
    pub total_gen_capacity_mw: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_bus() -> Network {
        let mut net = Network::new("two-bus");
        let mut slack = Bus::pq(1, 138.0);
        slack.kind = BusKind::Slack;
        net.buses.push(slack);
        net.buses.push(Bus::pq(2, 138.0));
        net.branches
            .push(Branch::line(0, 1, 0.01, 0.1, 0.02, 100.0));
        net.loads.push(Load {
            bus: 1,
            p_mw: 50.0,
            q_mvar: 10.0,
            in_service: true,
        });
        net.gens.push(Generator {
            bus: 0,
            p_mw: 50.0,
            q_mvar: 0.0,
            vm_setpoint_pu: 1.0,
            p_min_mw: 0.0,
            p_max_mw: 200.0,
            q_min_mvar: -100.0,
            q_max_mvar: 100.0,
            in_service: true,
            cost: GenCost {
                c2: 0.01,
                c1: 20.0,
                c0: 0.0,
            },
        });
        net
    }

    #[test]
    fn valid_network_passes() {
        assert!(two_bus().validate().is_ok());
    }

    #[test]
    fn content_hash_is_deterministic_and_parameter_sensitive() {
        let a = two_bus();
        let b = two_bus();
        assert_eq!(a.content_hash(), b.content_hash());
        // A one-line rating perturbation must change the hash: solver
        // results are rating-dependent, so the cache key must be too.
        let mut c = two_bus();
        c.branches[0].rating_mva += 1.0;
        assert_ne!(a.content_hash(), c.content_hash());
        // So must a load change…
        let mut d = two_bus();
        d.loads[0].p_mw += 0.5;
        assert_ne!(a.content_hash(), d.content_hash());
        // …and a service-status flip.
        let mut e = two_bus();
        e.branches[0].in_service = false;
        assert_ne!(a.content_hash(), e.content_hash());
    }

    #[test]
    fn totals() {
        let net = two_bus();
        assert_eq!(net.total_load_mw(), 50.0);
        assert_eq!(net.total_load_mvar(), 10.0);
        assert_eq!(net.total_gen_capacity_mw(), 200.0);
    }

    #[test]
    fn bus_lookup() {
        let net = two_bus();
        assert_eq!(net.bus_index(2), Some(1));
        assert_eq!(net.bus_index(99), None);
        assert_eq!(net.slack(), Some(0));
    }

    #[test]
    fn missing_slack_detected() {
        let mut net = two_bus();
        net.buses[0].kind = BusKind::Pv;
        let errs = net.validate().unwrap_err();
        assert!(errs.contains(&ModelError::NoSlack));
    }

    #[test]
    fn multiple_slack_detected() {
        let mut net = two_bus();
        net.buses[1].kind = BusKind::Slack;
        let errs = net.validate().unwrap_err();
        assert!(matches!(errs[0], ModelError::MultipleSlack { .. }));
    }

    #[test]
    fn duplicate_ids_detected() {
        let mut net = two_bus();
        net.buses[1].id = 1;
        let errs = net.validate().unwrap_err();
        assert!(errs.contains(&ModelError::DuplicateBusId { id: 1 }));
    }

    #[test]
    fn dangling_reference_detected() {
        let mut net = two_bus();
        net.loads[0].bus = 7;
        let errs = net.validate().unwrap_err();
        assert!(matches!(errs[0], ModelError::DanglingReference { .. }));
    }

    #[test]
    fn degenerate_branch_detected() {
        let mut net = two_bus();
        net.branches[0].x_pu = 0.0;
        let errs = net.validate().unwrap_err();
        assert!(errs.contains(&ModelError::DegenerateBranch { index: 0 }));
    }

    #[test]
    fn bad_limits_detected() {
        let mut net = two_bus();
        net.gens[0].p_min_mw = 300.0;
        net.buses[0].vmin_pu = 1.2;
        let errs = net.validate().unwrap_err();
        assert!(errs.contains(&ModelError::BadGenLimits { index: 0 }));
        assert!(errs.contains(&ModelError::BadVoltageLimits { id: 1 }));
    }

    #[test]
    fn island_detected() {
        let mut net = two_bus();
        net.branches[0].in_service = false;
        let errs = net.validate().unwrap_err();
        assert!(matches!(errs[0], ModelError::Islanded { components: 2 }));
    }

    #[test]
    fn cost_curve() {
        let c = GenCost {
            c2: 0.1,
            c1: 5.0,
            c0: 100.0,
        };
        assert_eq!(c.eval(10.0), 0.1 * 100.0 + 50.0 + 100.0);
        assert_eq!(c.marginal(10.0), 7.0);
    }

    #[test]
    fn scheduled_injections_sign_convention() {
        let net = two_bus();
        let (p, q) = net.scheduled_injections();
        assert_eq!(p, vec![50.0, -50.0]);
        assert_eq!(q, vec![0.0, -10.0]);
    }

    #[test]
    fn summary_inventory() {
        let s = two_bus().summary();
        assert_eq!(s.buses, 2);
        assert_eq!(s.lines, 1);
        assert_eq!(s.transformers, 0);
        assert_eq!(s.total_load_mw, 50.0);
    }
}
