//! IEEE 14-bus test case data (PSTCA / MATPOWER `case14` distribution).
//!
//! Authentic parameter set: bus voltages and loads, generator limits and
//! polynomial costs, branch impedances, off-nominal taps on the three
//! transformers, and the 19 MVAr shunt at bus 9. MATPOWER ships this case
//! with unrated branches (`rateA = 0`), preserved here: a `rating_mva` of
//! zero means "unrated" throughout GridMind-RS.

/// Case text in the `gm-network` case format.
pub const IEEE14: &str = "\
case IEEE 14-bus system
basemva 100
bus 1 slack 1.060 0.0 135 0.94 1.06 1
bus 2 pv 1.045 -4.98 135 0.94 1.06 1
bus 3 pv 1.010 -12.72 135 0.94 1.06 1
bus 4 pq 1.019 -10.33 135 0.94 1.06 1
bus 5 pq 1.020 -8.78 135 0.94 1.06 1
bus 6 pv 1.070 -14.22 135 0.94 1.06 1
bus 7 pq 1.062 -13.37 135 0.94 1.06 1
bus 8 pv 1.090 -13.36 135 0.94 1.06 1
bus 9 pq 1.056 -14.94 135 0.94 1.06 1
bus 10 pq 1.051 -15.10 135 0.94 1.06 1
bus 11 pq 1.057 -14.79 135 0.94 1.06 1
bus 12 pq 1.055 -15.07 135 0.94 1.06 1
bus 13 pq 1.050 -15.16 135 0.94 1.06 1
bus 14 pq 1.036 -16.04 135 0.94 1.06 1
load 2 21.7 12.7
load 3 94.2 19.0
load 4 47.8 -3.9
load 5 7.6 1.6
load 6 11.2 7.5
load 9 29.5 16.6
load 10 9.0 5.8
load 11 3.5 1.8
load 12 6.1 1.6
load 13 13.5 5.8
load 14 14.9 5.0
gen 1 232.4 -16.9 1.060 0 332.4 0 10 0.0430293 20 0
gen 2 40.0 42.4 1.045 0 140 -40 50 0.25 20 0
gen 3 0.0 23.4 1.010 0 100 0 40 0.01 40 0
gen 6 0.0 12.2 1.070 0 100 -6 24 0.01 40 0
gen 8 0.0 17.4 1.090 0 100 -6 24 0.01 40 0
branch 1 2 0.01938 0.05917 0.0528 0 1 0 line
branch 1 5 0.05403 0.22304 0.0492 0 1 0 line
branch 2 3 0.04699 0.19797 0.0438 0 1 0 line
branch 2 4 0.05811 0.17632 0.0340 0 1 0 line
branch 2 5 0.05695 0.17388 0.0346 0 1 0 line
branch 3 4 0.06701 0.17103 0.0128 0 1 0 line
branch 4 5 0.01335 0.04211 0.0 0 1 0 line
branch 4 7 0.0 0.20912 0.0 0 0.978 0 trafo
branch 4 9 0.0 0.55618 0.0 0 0.969 0 trafo
branch 5 6 0.0 0.25202 0.0 0 0.932 0 trafo
branch 6 11 0.09498 0.19890 0.0 0 1 0 line
branch 6 12 0.12291 0.25581 0.0 0 1 0 line
branch 6 13 0.06615 0.13027 0.0 0 1 0 line
branch 7 8 0.0 0.17615 0.0 0 1 0 line
branch 7 9 0.0 0.11001 0.0 0 1 0 line
branch 9 10 0.03181 0.08450 0.0 0 1 0 line
branch 9 14 0.12711 0.27038 0.0 0 1 0 line
branch 10 11 0.08205 0.19207 0.0 0 1 0 line
branch 12 13 0.22092 0.19988 0.0 0 1 0 line
branch 13 14 0.17093 0.34802 0.0 0 1 0 line
shunt 9 0 19
";
