//! IEEE 30-bus test case data.
//!
//! Classic IEEE 30-bus system (generators at buses 1, 2, 5, 8, 11, 13):
//! topology, impedances, loads, shunts, and the standard quadratic cost
//! coefficients. Parameters follow the PSTCA distribution as reconstructed
//! for this project; thermal ratings follow the MATPOWER `case30` corridor
//! pattern (130 MVA backbone, 65/32 MVA intermediate, 16 MVA distribution
//! ends). Minor deviations from the archival file are possible and are
//! documented in DESIGN.md — the case validates and solves both power flow
//! and ACOPF.

/// Case text in the `gm-network` case format.
pub const IEEE30: &str = "\
case IEEE 30-bus system
basemva 100
bus 1 slack 1.060 0.0 132 0.95 1.10 1
bus 2 pv 1.043 -5.48 132 0.95 1.10 1
bus 3 pq 1.021 -7.96 132 0.95 1.10 1
bus 4 pq 1.012 -9.62 132 0.95 1.10 1
bus 5 pv 1.010 -14.37 132 0.95 1.10 1
bus 6 pq 1.010 -11.34 132 0.95 1.10 1
bus 7 pq 1.002 -13.12 132 0.95 1.10 1
bus 8 pv 1.010 -12.10 132 0.95 1.10 1
bus 9 pq 1.051 -14.38 33 0.95 1.10 1
bus 10 pq 1.045 -15.97 33 0.95 1.10 1
bus 11 pv 1.082 -14.39 11 0.95 1.10 1
bus 12 pq 1.057 -15.24 33 0.95 1.10 2
bus 13 pv 1.071 -15.24 11 0.95 1.10 2
bus 14 pq 1.042 -16.13 33 0.95 1.10 2
bus 15 pq 1.038 -16.22 33 0.95 1.10 2
bus 16 pq 1.045 -15.83 33 0.95 1.10 2
bus 17 pq 1.040 -16.14 33 0.95 1.10 2
bus 18 pq 1.028 -16.82 33 0.95 1.10 2
bus 19 pq 1.026 -17.00 33 0.95 1.10 2
bus 20 pq 1.030 -16.80 33 0.95 1.10 2
bus 21 pq 1.033 -16.42 33 0.95 1.10 3
bus 22 pq 1.033 -16.41 33 0.95 1.10 3
bus 23 pq 1.027 -16.61 33 0.95 1.10 2
bus 24 pq 1.021 -16.78 33 0.95 1.10 3
bus 25 pq 1.017 -16.35 33 0.95 1.10 3
bus 26 pq 1.000 -16.77 33 0.95 1.10 3
bus 27 pq 1.023 -15.82 33 0.95 1.10 3
bus 28 pq 1.007 -11.97 132 0.95 1.10 1
bus 29 pq 1.003 -17.06 33 0.95 1.10 3
bus 30 pq 0.992 -17.94 33 0.95 1.10 3
load 2 21.7 12.7
load 3 2.4 1.2
load 4 7.6 1.6
load 5 94.2 19.0
load 7 22.8 10.9
load 8 30.0 30.0
load 10 5.8 2.0
load 12 11.2 7.5
load 14 6.2 1.6
load 15 8.2 2.5
load 16 3.5 1.8
load 17 9.0 5.8
load 18 3.2 0.9
load 19 9.5 3.4
load 20 2.2 0.7
load 21 17.5 11.2
load 23 3.2 1.6
load 24 8.7 6.7
load 26 3.5 2.3
load 29 2.4 0.9
load 30 10.6 1.9
gen 1 138.6 -2.8 1.060 0 200 -20 200 0.00375 2.0 0
gen 2 57.6 2.5 1.043 0 80 -20 100 0.0175 1.75 0
gen 5 24.6 22.6 1.010 0 50 -15 80 0.0625 1.0 0
gen 8 35.0 34.8 1.010 0 35 -15 60 0.00834 3.25 0
gen 11 17.9 30.0 1.082 0 30 -10 50 0.025 3.0 0
gen 13 16.9 37.0 1.071 0 40 -15 60 0.025 3.0 0
branch 1 2 0.0192 0.0575 0.0528 130 1 0 line
branch 1 3 0.0452 0.1652 0.0408 130 1 0 line
branch 2 4 0.0570 0.1737 0.0368 65 1 0 line
branch 3 4 0.0132 0.0379 0.0084 130 1 0 line
branch 2 5 0.0472 0.1983 0.0418 130 1 0 line
branch 2 6 0.0581 0.1763 0.0374 65 1 0 line
branch 4 6 0.0119 0.0414 0.0090 90 1 0 line
branch 5 7 0.0460 0.1160 0.0204 70 1 0 line
branch 6 7 0.0267 0.0820 0.0170 130 1 0 line
branch 6 8 0.0120 0.0420 0.0090 32 1 0 line
branch 6 9 0.0 0.2080 0.0 65 0.978 0 trafo
branch 6 10 0.0 0.5560 0.0 32 0.969 0 trafo
branch 9 11 0.0 0.2080 0.0 65 1 0 line
branch 9 10 0.0 0.1100 0.0 65 1 0 line
branch 4 12 0.0 0.2560 0.0 65 0.932 0 trafo
branch 12 13 0.0 0.1400 0.0 65 1 0 line
branch 12 14 0.1231 0.2559 0.0 32 1 0 line
branch 12 15 0.0662 0.1304 0.0 32 1 0 line
branch 12 16 0.0945 0.1987 0.0 32 1 0 line
branch 14 15 0.2210 0.1997 0.0 16 1 0 line
branch 16 17 0.0524 0.1923 0.0 16 1 0 line
branch 15 18 0.1073 0.2185 0.0 16 1 0 line
branch 18 19 0.0639 0.1292 0.0 16 1 0 line
branch 19 20 0.0340 0.0680 0.0 32 1 0 line
branch 10 20 0.0936 0.2090 0.0 32 1 0 line
branch 10 17 0.0324 0.0845 0.0 32 1 0 line
branch 10 21 0.0348 0.0749 0.0 32 1 0 line
branch 10 22 0.0727 0.1499 0.0 32 1 0 line
branch 21 22 0.0116 0.0236 0.0 32 1 0 line
branch 15 23 0.1000 0.2020 0.0 16 1 0 line
branch 22 24 0.1150 0.1790 0.0 16 1 0 line
branch 23 24 0.1320 0.2700 0.0 16 1 0 line
branch 24 25 0.1885 0.3292 0.0 16 1 0 line
branch 25 26 0.2544 0.3800 0.0 16 1 0 line
branch 25 27 0.1093 0.2087 0.0 16 1 0 line
branch 28 27 0.0 0.3960 0.0 65 0.968 0 trafo
branch 27 29 0.2198 0.4153 0.0 16 1 0 line
branch 27 30 0.3202 0.6027 0.0 16 1 0 line
branch 29 30 0.2399 0.4533 0.0 16 1 0 line
branch 8 28 0.0636 0.2000 0.0428 32 1 0 line
branch 6 28 0.0169 0.0599 0.0130 32 1 0 line
shunt 10 0 19
shunt 24 0 4.3
";
