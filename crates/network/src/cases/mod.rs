//! IEEE test case library and fuzzy case identification.
//!
//! Five cases are available, matching the paper's Table 2. IEEE 14 and 30
//! are embedded authentic data; IEEE 57, 118, and 300 are deterministic
//! synthetic reconstructions (see [`crate::synth`] and DESIGN.md §1).
//!
//! The paper's agent logs show fuzzy case identification with a confidence
//! score ("Identified case: IEEE 118-bus system (confidence 1.0)");
//! [`identify_case`] reproduces that behaviour: exact canonical names score
//! 1.0, recognisable variants ("ieee 118", "118-bus", "118") score lower
//! but still resolve.

mod ieee14;
mod ieee30;
mod ratings;

use crate::model::Network;
use crate::synth::{generate, SynthSpec};

/// Canonical identifiers for the supported cases.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum CaseId {
    /// IEEE 14-bus system (authentic data).
    Ieee14,
    /// IEEE 30-bus system (authentic data).
    Ieee30,
    /// IEEE 57-bus system (synthetic reconstruction).
    Ieee57,
    /// IEEE 118-bus system (synthetic reconstruction).
    Ieee118,
    /// IEEE 300-bus system (synthetic reconstruction).
    Ieee300,
}

impl CaseId {
    /// All supported cases, smallest first.
    pub const ALL: [CaseId; 5] = [
        CaseId::Ieee14,
        CaseId::Ieee30,
        CaseId::Ieee57,
        CaseId::Ieee118,
        CaseId::Ieee300,
    ];

    /// Canonical short name ("case118").
    pub fn short_name(self) -> &'static str {
        match self {
            CaseId::Ieee14 => "case14",
            CaseId::Ieee30 => "case30",
            CaseId::Ieee57 => "case57",
            CaseId::Ieee118 => "case118",
            CaseId::Ieee300 => "case300",
        }
    }

    /// Display name ("IEEE 118-bus system").
    pub fn display_name(self) -> &'static str {
        match self {
            CaseId::Ieee14 => "IEEE 14-bus system",
            CaseId::Ieee30 => "IEEE 30-bus system",
            CaseId::Ieee57 => "IEEE 57-bus system",
            CaseId::Ieee118 => "IEEE 118-bus system",
            CaseId::Ieee300 => "IEEE 300-bus system",
        }
    }

    /// Bus count (the number in the case name).
    pub fn size(self) -> usize {
        match self {
            CaseId::Ieee14 => 14,
            CaseId::Ieee30 => 30,
            CaseId::Ieee57 => 57,
            CaseId::Ieee118 => 118,
            CaseId::Ieee300 => 300,
        }
    }
}

/// Case lookup failure.
#[derive(Debug, Clone, PartialEq)]
pub struct UnknownCase {
    /// The input that could not be resolved.
    pub input: String,
}

impl std::fmt::Display for UnknownCase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "unknown case {:?}; supported: case14, case30, case57, case118, case300, \
             synth1354, synth2869, synth9241",
            self.input
        )
    }
}

impl std::error::Error for UnknownCase {}

/// Fuzzy case identification with a confidence score in `(0, 1]`.
///
/// Accepts canonical names (`case118`, confidence 1.0), display names
/// (`IEEE 118-bus system`), spaced variants (`ieee 118`, `118 bus`), and
/// bare sizes (`118`, confidence 0.8).
pub fn identify_case(input: &str) -> Option<(CaseId, f64)> {
    let norm: String = input
        .trim()
        .to_ascii_lowercase()
        .chars()
        .filter(|c| c.is_ascii_alphanumeric())
        .collect();
    if norm.is_empty() {
        return None;
    }
    for id in CaseId::ALL {
        if norm == id.short_name() {
            return Some((id, 1.0));
        }
    }
    let digits: String = norm.chars().filter(|c| c.is_ascii_digit()).collect();
    let size: usize = digits.parse().ok()?;
    let id = CaseId::ALL.into_iter().find(|c| c.size() == size)?;
    let conf = if norm.contains("ieee") || norm.contains("case") || norm.contains("bus") {
        0.95
    } else if norm == digits {
        0.8
    } else {
        0.6
    };
    Some((id, conf))
}

/// Applies the embedded AC-calibrated ratings to a synthetic case (see
/// `ratings.rs` and `gm-bench/src/bin/calibrate_ratings.rs`).
fn apply_ratings(mut net: Network, ratings: &[f64]) -> Network {
    assert_eq!(
        net.branches.len(),
        ratings.len(),
        "embedded ratings out of sync with the generator — re-run calibrate_ratings"
    );
    for (br, &r) in net.branches.iter_mut().zip(ratings) {
        br.rating_mva = r;
    }
    net
}

/// Loads a case by [`CaseId`].
pub fn load(id: CaseId) -> Network {
    match id {
        CaseId::Ieee14 => {
            crate::caseformat::parse(ieee14::IEEE14).expect("embedded IEEE 14 case data must parse")
        }
        CaseId::Ieee30 => {
            crate::caseformat::parse(ieee30::IEEE30).expect("embedded IEEE 30 case data must parse")
        }
        CaseId::Ieee57 => apply_ratings(
            generate(&SynthSpec {
                name: "IEEE 57-bus system".into(),
                n_bus: 57,
                n_gen: 7,
                n_load: 42,
                n_line: 63,
                n_trafo: 17,
                total_load_mw: 1250.8,
                total_gen_capacity_mw: 2800.0,
                seed: 0x57,
                rating_margin: 1.0,
            })
            .expect("embedded case57 spec must generate"),
            ratings::RATINGS_57,
        ),
        CaseId::Ieee118 => apply_ratings(
            generate(&SynthSpec {
                name: "IEEE 118-bus system".into(),
                n_bus: 118,
                n_gen: 54,
                n_load: 99,
                n_line: 175,
                n_trafo: 11,
                total_load_mw: 4242.0,
                total_gen_capacity_mw: 9161.0,
                seed: 0x118,
                rating_margin: 1.0,
            })
            .expect("embedded case118 spec must generate"),
            ratings::RATINGS_118,
        ),
        CaseId::Ieee300 => apply_ratings(
            generate(&SynthSpec {
                name: "IEEE 300-bus system".into(),
                n_bus: 300,
                n_gen: 68,
                n_load: 193,
                n_line: 283,
                n_trafo: 128,
                total_load_mw: 23525.8,
                total_gen_capacity_mw: 43000.0,
                seed: 0x300,
                rating_margin: 1.45,
            })
            .expect("embedded case300 spec must generate"),
            ratings::RATINGS_300,
        ),
    }
}

/// Loads a case by fuzzy name, returning the network and the identification
/// confidence (the paper's log line). Falls through to the
/// interconnect-scale registry ([`crate::scale`]) so `synth9241`-class
/// names resolve the same way the paper cases do.
pub fn load_case(input: &str) -> Result<(Network, f64), UnknownCase> {
    if let Some((id, conf)) = identify_case(input) {
        return Ok((load(id), conf));
    }
    if let Some((id, conf)) = crate::scale::identify_scale(input) {
        return Ok((crate::scale::load_scale(id).clone(), conf));
    }
    Err(UnknownCase {
        input: input.to_string(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identify_canonical() {
        assert_eq!(identify_case("case118"), Some((CaseId::Ieee118, 1.0)));
        assert_eq!(identify_case("case14"), Some((CaseId::Ieee14, 1.0)));
    }

    #[test]
    fn identify_variants() {
        let (id, conf) = identify_case("IEEE 118-bus system").unwrap();
        assert_eq!(id, CaseId::Ieee118);
        assert!(conf >= 0.95);
        let (id, conf) = identify_case("118").unwrap();
        assert_eq!(id, CaseId::Ieee118);
        assert!((0.5..1.0).contains(&conf));
        assert_eq!(identify_case("ieee 30").unwrap().0, CaseId::Ieee30);
        assert_eq!(identify_case("300 bus").unwrap().0, CaseId::Ieee300);
    }

    #[test]
    fn identify_rejects_unknown() {
        assert_eq!(identify_case("case999"), None);
        assert_eq!(identify_case(""), None);
        assert_eq!(identify_case("hello"), None);
    }

    #[test]
    fn ieee14_inventory_matches_table2() {
        let net = load(CaseId::Ieee14);
        let s = net.summary();
        assert_eq!(s.buses, 14);
        assert_eq!(s.generators, 5);
        assert_eq!(s.loads, 11);
        assert_eq!(s.lines, 17);
        assert_eq!(s.transformers, 3);
        assert!((s.total_load_mw - 259.0).abs() < 1e-6);
        net.validate().expect("IEEE 14 must validate");
    }

    #[test]
    fn ieee30_inventory_matches_table2() {
        let net = load(CaseId::Ieee30);
        let s = net.summary();
        assert_eq!(s.buses, 30);
        assert_eq!(s.generators, 6);
        assert_eq!(s.loads, 21);
        assert_eq!(s.lines, 37);
        assert_eq!(s.transformers, 4);
        assert!((s.total_load_mw - 283.4).abs() < 1e-6);
        net.validate().expect("IEEE 30 must validate");
    }

    #[test]
    fn synthetic_inventories_match_table2() {
        for (id, bus, gen, load_n, line, trafo) in [
            (CaseId::Ieee57, 57, 7, 42, 63, 17),
            (CaseId::Ieee118, 118, 54, 99, 175, 11),
            (CaseId::Ieee300, 300, 68, 193, 283, 128),
        ] {
            let net = load(id);
            let s = net.summary();
            assert_eq!(s.buses, bus, "{id:?}");
            assert_eq!(s.generators, gen, "{id:?}");
            assert_eq!(s.loads, load_n, "{id:?}");
            assert_eq!(s.lines, line, "{id:?}");
            assert_eq!(s.transformers, trafo, "{id:?}");
            net.validate().unwrap_or_else(|e| panic!("{id:?}: {e:?}"));
        }
    }

    #[test]
    fn ieee118_paper_totals() {
        let net = load(CaseId::Ieee118);
        assert!((net.total_load_mw() - 4242.0).abs() < 1e-6);
        assert!((net.total_gen_capacity_mw() - 9161.0).abs() < 1e-6);
    }

    #[test]
    fn load_case_reports_confidence() {
        let (net, conf) = load_case("ieee 57").unwrap();
        assert_eq!(net.n_bus(), 57);
        assert!(conf > 0.9);
        assert!(load_case("case1234").is_err());
    }

    #[test]
    fn deterministic_synthetic_loads() {
        let a = load(CaseId::Ieee118);
        let b = load(CaseId::Ieee118);
        assert_eq!(a.branches.len(), b.branches.len());
        for (x, y) in a.branches.iter().zip(&b.branches) {
            assert_eq!(x.rating_mva, y.rating_mva);
        }
    }
}
