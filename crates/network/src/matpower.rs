//! MATPOWER case file (`.m`) importer.
//!
//! Parses the `mpc.baseMVA` / `mpc.bus` / `mpc.gen` / `mpc.branch` /
//! `mpc.gencost` matrices of a MATPOWER case file into a [`Network`], so
//! users with authentic archive data can run it through GridMind-RS
//! directly. Supports MATPOWER format version 2, polynomial cost models
//! of order ≤ 3, and the standard column layouts; `%` comments and
//! arbitrary whitespace are tolerated.

use crate::model::{Branch, BranchKind, Bus, BusKind, GenCost, Generator, Load, Network, Shunt};
use std::collections::HashMap;

/// Import failure.
#[derive(Debug, Clone, PartialEq)]
pub struct MatpowerError {
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for MatpowerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "MATPOWER import error: {}", self.message)
    }
}

impl std::error::Error for MatpowerError {}

fn err(message: impl Into<String>) -> MatpowerError {
    MatpowerError {
        message: message.into(),
    }
}

/// Extracts the numeric rows of `mpc.<name> = [ ... ];`.
fn matrix(text: &str, name: &str) -> Result<Vec<Vec<f64>>, MatpowerError> {
    let needle = format!("mpc.{name}");
    let start = text
        .find(&needle)
        .ok_or_else(|| err(format!("missing mpc.{name} block")))?;
    let after = &text[start..];
    let open = after
        .find('[')
        .ok_or_else(|| err(format!("mpc.{name}: missing '['")))?;
    let close = after[open..]
        .find(']')
        .ok_or_else(|| err(format!("mpc.{name}: missing ']'")))?;
    let body = &after[open + 1..open + close];
    let mut rows = Vec::new();
    for raw in body.lines() {
        let line = raw.split('%').next().unwrap_or("").trim();
        let line = line.trim_end_matches(';').trim();
        if line.is_empty() {
            continue;
        }
        let row: Result<Vec<f64>, _> = line
            .split_whitespace()
            .map(|tok| {
                tok.trim_end_matches([',', ';'])
                    .parse::<f64>()
                    .map_err(|_| err(format!("mpc.{name}: bad number {tok:?}")))
            })
            .collect();
        rows.push(row?);
    }
    if rows.is_empty() {
        return Err(err(format!("mpc.{name}: empty matrix")));
    }
    Ok(rows)
}

/// Extracts a scalar assignment `mpc.<name> = <value>;`.
fn scalar(text: &str, name: &str) -> Result<f64, MatpowerError> {
    let needle = format!("mpc.{name}");
    let start = text
        .find(&needle)
        .ok_or_else(|| err(format!("missing mpc.{name}")))?;
    let after = &text[start + needle.len()..];
    let eq = after
        .find('=')
        .ok_or_else(|| err(format!("mpc.{name}: missing '='")))?;
    let rest = after[eq + 1..]
        .split(';')
        .next()
        .unwrap_or("")
        .trim()
        .trim_matches('\'');
    rest.parse::<f64>()
        .map_err(|_| err(format!("mpc.{name}: bad scalar {rest:?}")))
}

/// Parses MATPOWER case text into a [`Network`].
pub fn parse_matpower(text: &str, name: &str) -> Result<Network, MatpowerError> {
    let base_mva = scalar(text, "baseMVA")?;
    let bus_rows = matrix(text, "bus")?;
    let gen_rows = matrix(text, "gen")?;
    let branch_rows = matrix(text, "branch")?;
    let cost_rows = matrix(text, "gencost").ok();

    let mut net = Network::new(name);
    net.base_mva = base_mva;

    let mut index_of: HashMap<u32, usize> = HashMap::new();
    for row in &bus_rows {
        if row.len() < 13 {
            return Err(err(format!("bus row needs 13 columns, got {}", row.len())));
        }
        let id = row[0] as u32;
        let kind = match row[1] as u32 {
            3 => BusKind::Slack,
            2 => BusKind::Pv,
            1 | 4 => BusKind::Pq, // type 4 (isolated) kept as PQ; validation will flag islands
            other => return Err(err(format!("bus {id}: unknown type {other}"))),
        };
        index_of.insert(id, net.buses.len());
        net.buses.push(Bus {
            id,
            name: format!("bus{id}"),
            kind,
            vm_pu: row[7],
            va_deg: row[8],
            base_kv: row[9],
            vmin_pu: row[12],
            vmax_pu: row[11],
            area: row[6] as u32,
        });
        let (pd, qd) = (row[2], row[3]);
        if pd != 0.0 || qd != 0.0 {
            let bus = net.buses.len() - 1;
            net.loads.push(Load {
                bus,
                p_mw: pd,
                q_mvar: qd,
                in_service: true,
            });
        }
        let (gs, bs) = (row[4], row[5]);
        if gs != 0.0 || bs != 0.0 {
            let bus = net.buses.len() - 1;
            net.shunts.push(Shunt {
                bus,
                g_mw: gs,
                b_mvar: bs,
                in_service: true,
            });
        }
    }

    for (gi, row) in gen_rows.iter().enumerate() {
        if row.len() < 10 {
            return Err(err(format!("gen row {gi} needs 10 columns")));
        }
        let bus_id = row[0] as u32;
        let bus = *index_of
            .get(&bus_id)
            .ok_or_else(|| err(format!("gen {gi}: unknown bus {bus_id}")))?;
        let cost = match cost_rows.as_ref().and_then(|c| c.get(gi)) {
            None => GenCost {
                c2: 0.01,
                c1: 20.0,
                c0: 0.0,
            },
            Some(c) => {
                if c.len() < 4 {
                    return Err(err(format!("gencost row {gi} too short")));
                }
                let model = c[0] as u32;
                if model != 2 {
                    return Err(err(format!(
                        "gencost row {gi}: only polynomial (model 2) supported, got {model}"
                    )));
                }
                let n = c[3] as usize;
                let coeffs = &c[4..];
                if coeffs.len() < n {
                    return Err(err(format!("gencost row {gi}: {n} coefficients expected")));
                }
                match n {
                    0 => GenCost {
                        c2: 0.0,
                        c1: 0.0,
                        c0: 0.0,
                    },
                    1 => GenCost {
                        c2: 0.0,
                        c1: 0.0,
                        c0: coeffs[0],
                    },
                    2 => GenCost {
                        c2: 0.0,
                        c1: coeffs[0],
                        c0: coeffs[1],
                    },
                    3 => GenCost {
                        c2: coeffs[0],
                        c1: coeffs[1],
                        c0: coeffs[2],
                    },
                    more => {
                        return Err(err(format!(
                            "gencost row {gi}: polynomial order {more} > 3 unsupported"
                        )))
                    }
                }
            }
        };
        net.gens.push(Generator {
            bus,
            p_mw: row[1],
            q_mvar: row[2],
            vm_setpoint_pu: row[5],
            p_min_mw: row[9],
            p_max_mw: row[8],
            q_min_mvar: row[4],
            q_max_mvar: row[3],
            in_service: row[7] > 0.0,
            cost,
        });
    }

    for (bi, row) in branch_rows.iter().enumerate() {
        if row.len() < 11 {
            return Err(err(format!("branch row {bi} needs 11 columns")));
        }
        let f_id = row[0] as u32;
        let t_id = row[1] as u32;
        let from_bus = *index_of
            .get(&f_id)
            .ok_or_else(|| err(format!("branch {bi}: unknown bus {f_id}")))?;
        let to_bus = *index_of
            .get(&t_id)
            .ok_or_else(|| err(format!("branch {bi}: unknown bus {t_id}")))?;
        let tap_raw = row[8];
        let shift = row[9];
        let is_trafo = (tap_raw != 0.0 && (tap_raw - 1.0).abs() > 1e-9) || shift != 0.0;
        net.branches.push(Branch {
            from_bus,
            to_bus,
            r_pu: row[2],
            x_pu: row[3],
            b_pu: row[4],
            tap: if tap_raw == 0.0 { 1.0 } else { tap_raw },
            shift_deg: shift,
            rating_mva: row[5],
            in_service: row[10] > 0.0,
            kind: if is_trafo {
                BranchKind::Transformer
            } else {
                BranchKind::Line
            },
        });
    }

    Ok(net)
}

/// The WSCC 9-bus system in MATPOWER format (`case9`), authentic data.
///
/// Shipped as a public sample both for tests and as an importer usage
/// reference; parse it with [`parse_matpower`].
pub const SAMPLE_CASE9: &str = r"
function mpc = case9
% canonical WSCC 3-machine 9-bus system
mpc.version = '2';
mpc.baseMVA = 100;

%% bus data
%	bus_i	type	Pd	Qd	Gs	Bs	area	Vm	Va	baseKV	zone	Vmax	Vmin
mpc.bus = [
	1	3	0	0	0	0	1	1	0	345	1	1.1	0.9;
	2	2	0	0	0	0	1	1	0	345	1	1.1	0.9;
	3	2	0	0	0	0	1	1	0	345	1	1.1	0.9;
	4	1	0	0	0	0	1	1	0	345	1	1.1	0.9;
	5	1	90	30	0	0	1	1	0	345	1	1.1	0.9;
	6	1	0	0	0	0	1	1	0	345	1	1.1	0.9;
	7	1	100	35	0	0	1	1	0	345	1	1.1	0.9;
	8	1	0	0	0	0	1	1	0	345	1	1.1	0.9;
	9	1	125	50	0	0	1	1	0	345	1	1.1	0.9;
];

%% generator data
mpc.gen = [
	1	72.3	27.03	300	-300	1	100	1	250	10	0	0	0	0	0	0	0	0	0	0	0;
	2	163	6.54	300	-300	1	100	1	300	10	0	0	0	0	0	0	0	0	0	0	0;
	3	85	-10.95	300	-300	1	100	1	270	10	0	0	0	0	0	0	0	0	0	0	0;
];

%% branch data
mpc.branch = [
	1	4	0	0.0576	0	250	250	250	0	0	1	-360	360;
	4	5	0.017	0.092	0.158	250	250	250	0	0	1	-360	360;
	5	6	0.039	0.17	0.358	150	150	150	0	0	1	-360	360;
	3	6	0	0.0586	0	300	300	300	0	0	1	-360	360;
	6	7	0.0119	0.1008	0.209	150	150	150	0	0	1	-360	360;
	7	8	0.0085	0.072	0.149	250	250	250	0	0	1	-360	360;
	8	2	0	0.0625	0	250	250	250	0	0	1	-360	360;
	8	9	0.032	0.161	0.306	250	250	250	0	0	1	-360	360;
	9	4	0.01	0.085	0.176	250	250	250	0	0	1	-360	360;
];

%% generator cost data
mpc.gencost = [
	2	1500	0	3	0.11	5	150;
	2	2000	0	3	0.085	1.2	600;
	2	3000	0	3	0.1225	1	335;
];
";

#[cfg(test)]
mod tests {
    use super::SAMPLE_CASE9 as CASE9;
    use super::*;

    #[test]
    fn parses_case9_structure() {
        let net = parse_matpower(CASE9, "WSCC 9-bus").unwrap();
        assert_eq!(net.n_bus(), 9);
        assert_eq!(net.gens.len(), 3);
        assert_eq!(net.loads.len(), 3);
        assert_eq!(net.branches.len(), 9);
        assert_eq!(net.n_lines(), 9); // all taps zero → lines
        assert_eq!(net.base_mva, 100.0);
        assert!((net.total_load_mw() - 315.0).abs() < 1e-9);
        assert_eq!(net.gens[1].p_max_mw, 300.0);
        assert!((net.gens[0].cost.c2 - 0.11).abs() < 1e-12);
        net.validate().expect("case9 must validate");
    }

    #[test]
    fn case9_power_flow_matches_matpower() {
        let net = parse_matpower(CASE9, "WSCC 9-bus").unwrap();
        let rep = gm_powerflow_probe::solve(&net);
        // MATPOWER runpf(case9): losses ≈ 4.95 MW, slack P ≈ 71.95 MW.
        assert!(rep.0, "case9 power flow must converge");
        assert!(
            (rep.1 - 4.95).abs() < 0.3,
            "losses {:.2} far from MATPOWER's 4.95",
            rep.1
        );
    }

    #[test]
    fn unknown_cost_model_rejected() {
        let text = CASE9.replace(
            "\t2\t1500\t0\t3\t0.11\t5\t150;",
            "\t1\t1500\t0\t3\t0.11\t5\t150;",
        );
        let e = parse_matpower(&text, "x").unwrap_err();
        assert!(e.message.contains("polynomial"));
    }

    #[test]
    fn missing_block_rejected() {
        let e = parse_matpower("function mpc = nothing", "x").unwrap_err();
        assert!(e.message.contains("missing mpc.baseMVA"));
    }

    #[test]
    fn transformer_detection_by_tap_and_shift() {
        let text = CASE9.replace(
            "	1	4	0	0.0576	0	250	250	250	0	0	1	-360	360;",
            "	1	4	0	0.0576	0	250	250	250	0.978	0	1	-360	360;",
        );
        let net = parse_matpower(&text, "x").unwrap();
        assert_eq!(net.n_transformers(), 1);
        assert_eq!(net.branches[0].tap, 0.978);
    }

    /// Tiny indirection so this test file does not create a circular dev
    /// dependency on gm-powerflow: a minimal Gauss-Seidel-free check via
    /// the DC calibration path would be too weak, so we link the real
    /// solver through the workspace when testing the whole suite instead.
    /// Here: solve with a self-contained Newton iteration on the Ybus.
    mod gm_powerflow_probe {
        use crate::model::{BusKind, Network};
        use crate::ybus::YBus;
        use gm_numeric::Complex;
        use gm_sparse::{SparseLu, Triplets};

        /// Returns (converged, losses_mw).
        pub fn solve(net: &Network) -> (bool, f64) {
            let n = net.n_bus();
            let ybus = YBus::assemble(net);
            let slack = net.slack().unwrap();
            let is_pv: Vec<bool> = (0..n).map(|i| net.buses[i].kind == BusKind::Pv).collect();
            let (p_mw, q_mvar) = net.scheduled_injections();
            let p_spec: Vec<f64> = p_mw.iter().map(|v| v / net.base_mva).collect();
            let q_spec: Vec<f64> = q_mvar.iter().map(|v| v / net.base_mva).collect();
            let mut v: Vec<Complex> = (0..n)
                .map(|i| {
                    let vm = if i == slack || is_pv[i] {
                        net.gens_at(i)
                            .next()
                            .map(|(_, g)| g.vm_setpoint_pu)
                            .unwrap_or(1.0)
                    } else {
                        1.0
                    };
                    Complex::from_polar(vm, 0.0)
                })
                .collect();

            let mut col_th = vec![usize::MAX; n];
            let mut k = 0;
            for (i, c) in col_th.iter_mut().enumerate() {
                if i != slack {
                    *c = k;
                    k += 1;
                }
            }
            let mut col_vm = vec![usize::MAX; n];
            let mut m = 0;
            for (i, c) in col_vm.iter_mut().enumerate() {
                if i != slack && !is_pv[i] {
                    *c = k + m;
                    m += 1;
                }
            }
            let nvar = k + m;
            let mut converged = false;
            for _ in 0..20 {
                let s = ybus.injections(&v);
                let mut f = vec![0.0; nvar];
                let mut norm = 0.0f64;
                for i in 0..n {
                    if col_th[i] != usize::MAX {
                        f[col_th[i]] = s[i].re - p_spec[i];
                        norm = norm.max(f[col_th[i]].abs());
                    }
                    if col_vm[i] != usize::MAX {
                        f[col_vm[i]] = s[i].im - q_spec[i];
                        norm = norm.max(f[col_vm[i]].abs());
                    }
                }
                if norm < 1e-9 {
                    converged = true;
                    break;
                }
                let mut tj = Triplets::new(nvar, nvar);
                for i in 0..n {
                    let (cols, vals) = ybus.matrix.row(i);
                    let vi = v[i].abs();
                    let thi = v[i].arg();
                    for (&j, &y) in cols.iter().zip(vals) {
                        let (g, b) = (y.re, y.im);
                        if i == j {
                            let (pi, qi) = (s[i].re, s[i].im);
                            if col_th[i] != usize::MAX {
                                tj.push(col_th[i], col_th[i], -qi - b * vi * vi);
                                if col_vm[i] != usize::MAX {
                                    tj.push(col_th[i], col_vm[i], pi / vi + g * vi);
                                }
                            }
                            if col_vm[i] != usize::MAX {
                                tj.push(col_vm[i], col_th[i], pi - g * vi * vi);
                                tj.push(col_vm[i], col_vm[i], qi / vi - b * vi);
                            }
                        } else {
                            let vj = v[j].abs();
                            let thij = thi - v[j].arg();
                            let (sin, cos) = thij.sin_cos();
                            if col_th[i] != usize::MAX && col_th[j] != usize::MAX {
                                tj.push(col_th[i], col_th[j], vi * vj * (g * sin - b * cos));
                            }
                            if col_th[i] != usize::MAX && col_vm[j] != usize::MAX {
                                tj.push(col_th[i], col_vm[j], vi * (g * cos + b * sin));
                            }
                            if col_vm[i] != usize::MAX && col_th[j] != usize::MAX {
                                tj.push(col_vm[i], col_th[j], -vi * vj * (g * cos + b * sin));
                            }
                            if col_vm[i] != usize::MAX && col_vm[j] != usize::MAX {
                                tj.push(col_vm[i], col_vm[j], vi * (g * sin - b * cos));
                            }
                        }
                    }
                }
                let lu = match SparseLu::factor(&tj.to_csr()) {
                    Ok(lu) => lu,
                    Err(_) => return (false, 0.0),
                };
                let dx = lu.solve(&f);
                for i in 0..n {
                    let mut vm = v[i].abs();
                    let mut th = v[i].arg();
                    if col_th[i] != usize::MAX {
                        th -= dx[col_th[i]];
                    }
                    if col_vm[i] != usize::MAX {
                        vm -= dx[col_vm[i]];
                    }
                    v[i] = Complex::from_polar(vm, th);
                }
            }
            let mut losses = 0.0;
            for (idx, br) in net.branches.iter().enumerate() {
                if br.in_service {
                    losses += (ybus.flow_from(idx, &v, net).re + ybus.flow_to(idx, &v, net).re)
                        * net.base_mva;
                }
            }
            (converged, losses)
        }
    }
}
