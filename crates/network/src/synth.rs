//! Deterministic synthetic network generator.
//!
//! The paper evaluates on the PSTCA IEEE 57/118/300-bus cases, whose raw
//! data files are external assets. This module reconstructs *statistically
//! equivalent* cases: exact Table-2 inventory (bus/gen/load/line/trafo
//! counts), realistic parameter distributions, and a two-step calibration
//! that (a) homogenizes impedances against a DC power flow so the case is
//! Newton-solvable, and (b) assigns thermal ratings from a DC N-1 sweep so
//! that the base case is secure but a handful of corridors overload under
//! contingency — the regime the paper's Table 1 probes.
//!
//! Generation is fully deterministic for a given [`SynthSpec`] (seeded
//! [`SmallRng`]); two calls produce identical networks.

use crate::model::{Branch, BranchKind, Bus, BusKind, GenCost, Generator, Load, Network, Shunt};
use gm_sparse::{SparseLu, Triplets};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Typed failure from synthetic-case generation: a malformed spec or a
/// degenerate intermediate network surfaces as an error the caller can
/// handle instead of panicking (the generators run inside serve workers
/// and agent tools).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SynthError {
    /// The spec violates a structural precondition of the generator.
    InvalidSpec {
        /// Which precondition failed.
        reason: &'static str,
    },
    /// The intermediate network has no slack bus (no generators).
    NoSlack,
    /// The DC calibration matrix failed to factor.
    DcSingular,
}

impl std::fmt::Display for SynthError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SynthError::InvalidSpec { reason } => write!(f, "invalid synthetic spec: {reason}"),
            SynthError::NoSlack => write!(f, "synthetic network has no slack bus"),
            SynthError::DcSingular => write!(f, "DC calibration matrix is singular"),
        }
    }
}

impl std::error::Error for SynthError {}

/// Parameters of a synthetic case.
#[derive(Clone, Debug)]
pub struct SynthSpec {
    /// Case name, e.g. "IEEE 118-bus system (synthetic reconstruction)".
    pub name: String,
    /// Bus count.
    pub n_bus: usize,
    /// Generator count.
    pub n_gen: usize,
    /// Load count.
    pub n_load: usize,
    /// AC line count.
    pub n_line: usize,
    /// Transformer count.
    pub n_trafo: usize,
    /// Total active demand (MW).
    pub total_load_mw: f64,
    /// Total generation capacity (MW).
    pub total_gen_capacity_mw: f64,
    /// RNG seed (fixed per case for reproducibility).
    pub seed: u64,
    /// Global multiplier on calibrated thermal ratings (1.0 = the
    /// standard N-1-stressed regime; larger values relax the system).
    pub rating_margin: f64,
}

impl SynthSpec {
    /// Sanity constraints the generator relies on.
    fn check(&self) -> Result<(), SynthError> {
        let fail = |reason| Err(SynthError::InvalidSpec { reason });
        if self.n_bus < 12 {
            return fail("need at least 12 buses");
        }
        if self.n_gen < 1 || self.n_gen > self.n_bus {
            return fail("generator count out of range");
        }
        if self.n_load < 1 || self.n_load > self.n_bus {
            return fail("load count out of range");
        }
        if self.n_trafo < 4 {
            return fail("two-level design needs >= 4 transformers");
        }
        if self.n_line + self.n_trafo < self.n_bus + 4 {
            return fail("not enough branches for a doubly-connected two-zone network");
        }
        if self.total_gen_capacity_mw <= self.total_load_mw * 1.1 {
            return fail("generation capacity must exceed load by 10%");
        }
        Ok(())
    }

    /// Derived zone layout: `(n_hv, n_ring_lv, n_pair, t_ring)`.
    ///
    /// Buses are laid out as an HV ring (`n_hv`), an LV ring (`n_ring_lv`)
    /// coupled to the HV ring by `t_ring` transformers, and `n_pair`
    /// "substation" buses each hung off an HV bus through a *pair* of
    /// parallel transformers (so no single transformer outage islands
    /// anything). `t_ring + 2·n_pair == n_trafo` exactly.
    fn layout(&self) -> Result<(usize, usize, usize, usize), SynthError> {
        // Pair buses absorb surplus transformers (IEEE 300 has 128!), and
        // also relieve ring line demand when lines are scarce.
        let max_pairs = self.n_trafo.saturating_sub(4) / 2;
        let want_pairs = (self.n_trafo / 5).max(
            (self.n_bus + 2).saturating_sub(self.n_line), // ring line deficit
        );
        let n_pair = want_pairs.min(max_pairs);
        let mut t_ring = self.n_trafo - 2 * n_pair;
        let mut n_pair = n_pair;
        // Keep parity exact (t_ring must use all remaining transformers).
        debug_assert_eq!(t_ring + 2 * n_pair, self.n_trafo);
        if t_ring < 2 {
            // Give back one pair to keep >= 2 ring transformers.
            n_pair -= 1;
            t_ring += 2;
        }
        let non_pair = self.n_bus - n_pair;
        let n_ring_lv = 3usize.max((t_ring * 3).min(non_pair / 4));
        let n_hv = non_pair - n_ring_lv;
        if self.n_line < n_hv + n_ring_lv + 2 {
            return Err(SynthError::InvalidSpec {
                reason: "not enough lines for both rings plus chords",
            });
        }
        if t_ring > n_ring_lv * n_hv {
            return Err(SynthError::InvalidSpec {
                reason: "cannot place ring transformers",
            });
        }
        Ok((n_hv, n_ring_lv, n_pair, t_ring))
    }
}

/// Generates the synthetic network for a spec.
pub fn generate(spec: &SynthSpec) -> Result<Network, SynthError> {
    spec.check()?;
    let mut rng = SmallRng::seed_from_u64(spec.seed);

    // ---- Zone sizing (see `SynthSpec::layout`): an HV ring, an LV ring
    // joined to it by `t_ring` transformers, and `n_pair` substation buses
    // on parallel transformer pairs. No single branch outage islands the
    // system.
    let (n_hv, n_ring_lv, n_pair, t_ring) = spec.layout()?;
    let n_lv = n_ring_lv + n_pair;

    let mut net = Network::new(spec.name.clone());
    net.base_mva = 100.0;

    for i in 0..spec.n_bus {
        let hv = i < n_hv;
        let mut bus = Bus::pq(i as u32 + 1, if hv { 345.0 } else { 138.0 });
        bus.vmin_pu = 0.94;
        bus.vmax_pu = 1.06;
        bus.area = if hv { 1 } else { 2 };
        net.buses.push(bus);
    }

    // ---- Topology: two rings plus HV chords.
    let mut edges: std::collections::BTreeSet<(usize, usize)> = std::collections::BTreeSet::new();
    let add_ring =
        |edges: &mut std::collections::BTreeSet<(usize, usize)>, start: usize, n: usize| {
            for k in 0..n {
                let a = start + k;
                let b = start + (k + 1) % n;
                edges.insert((a.min(b), a.max(b)));
            }
        };
    add_ring(&mut edges, 0, n_hv);
    add_ring(&mut edges, n_hv, n_ring_lv);

    // Chords (geometrically local strides) on the HV ring.
    let n_chords = spec.n_line - n_hv - n_ring_lv;
    let mut added = 0usize;
    let mut guard = 0usize;
    while added < n_chords && guard < n_chords * 300 + 1000 {
        guard += 1;
        let i = rng.random_range(0..n_hv);
        let stride = rng.random_range(2..=(n_hv / 2).max(2));
        let j = (i + stride) % n_hv;
        if i == j {
            continue;
        }
        let (a, b) = (i.min(j), i.max(j));
        if edges.insert((a, b)) {
            added += 1;
        }
    }
    // Deterministic fallback if random placement saturated.
    let mut stride = 2usize;
    while added < n_chords {
        let mut placed = false;
        for i in 0..n_hv {
            if added == n_chords {
                break;
            }
            let j = (i + stride) % n_hv;
            let (a, b) = (i.min(j), i.max(j));
            if a != b && edges.insert((a, b)) {
                added += 1;
                placed = true;
            }
        }
        stride += 1;
        if !placed && stride > n_hv {
            return Err(SynthError::InvalidSpec {
                reason: "could not place all requested lines",
            });
        }
    }
    let line_edges: Vec<(usize, usize)> = edges.iter().copied().collect();
    assert_eq!(line_edges.len(), spec.n_line);

    // ---- Line impedances (provisional; homogenized later).
    for &(a, b) in &line_edges {
        let hv = b < n_hv;
        let x = if hv {
            rng.random_range(0.015..0.06)
        } else {
            rng.random_range(0.05..0.18)
        };
        let r = x * if hv { 0.2 } else { 0.4 };
        let bch = x * if hv { 0.6 } else { 0.1 };
        net.branches.push(Branch::line(a, b, r, x, bch, 0.0));
    }

    // ---- Ring transformers: couple the LV ring to the HV ring, spread
    // around both rings so no LV pocket depends on a single unit.
    for t in 0..t_ring {
        let hv_bus = (t * n_hv / t_ring) % n_hv;
        let lv_bus = n_hv + (t * n_ring_lv / t_ring) % n_ring_lv;
        let x = rng.random_range(0.03..0.08);
        let tap = 1.0 + rng.random_range(-3i32..=2) as f64 * 0.0125;
        net.branches
            .push(Branch::transformer(hv_bus, lv_bus, 0.003, x, tap, 0.0));
    }
    // ---- Substation pairs: each pair bus hangs off an HV bus through two
    // parallel transformers (single-unit outage keeps it energized).
    for p in 0..n_pair {
        let pair_bus = n_hv + n_ring_lv + p;
        let hv_bus = (p * n_hv / n_pair.max(1) + 1) % n_hv;
        for dup in 0..2 {
            let x = rng.random_range(0.05..0.10) + dup as f64 * 0.005;
            let tap = 1.0 + rng.random_range(-2i32..=2) as f64 * 0.0125;
            net.branches
                .push(Branch::transformer(hv_bus, pair_bus, 0.003, x, tap, 0.0));
        }
    }

    // ---- Loads: LV buses first, then HV, weights lognormal-ish.
    let mut load_buses: Vec<usize> = (n_hv..spec.n_bus).collect();
    let mut hv_candidates: Vec<usize> = (0..n_hv).collect();
    // Deterministic shuffle.
    for i in (1..hv_candidates.len()).rev() {
        let j = rng.random_range(0..=i);
        hv_candidates.swap(i, j);
    }
    load_buses.extend(hv_candidates.iter().copied());
    load_buses.truncate(spec.n_load);
    let weights: Vec<f64> = load_buses
        .iter()
        .map(|&bus| {
            let u: f64 = rng.random_range(0.0..1.0);
            // LV pockets carry lighter individual loads than HV
            // substations, keeping transformer corridors from dominating
            // every contingency ranking.
            let lv_scale = if bus >= n_hv { 0.45 } else { 1.0 };
            (1.5 * u).exp() * lv_scale
        })
        .collect();
    let wsum: f64 = weights.iter().sum();
    for (&bus, &w) in load_buses.iter().zip(&weights) {
        let p = spec.total_load_mw * w / wsum;
        let pf: f64 = rng.random_range(0.92..0.985);
        let q = p * (1.0 / (pf * pf) - 1.0f64).sqrt();
        net.loads.push(Load {
            bus,
            p_mw: p,
            q_mvar: q,
            in_service: true,
        });
    }

    // ---- Generators: mostly HV, spread around the ring.
    let mut gen_buses: Vec<usize> = Vec::with_capacity(spec.n_gen);
    for g in 0..spec.n_gen {
        let mut bus = (g * n_hv / spec.n_gen) % n_hv;
        // Nudge off load-heavy duplicates.
        while gen_buses.contains(&bus) {
            bus = (bus + 1) % n_hv;
        }
        gen_buses.push(bus);
    }
    let gw: Vec<f64> = (0..spec.n_gen)
        .map(|_| {
            let u: f64 = rng.random_range(0.0..1.0);
            (2.0 * u).exp()
        })
        .collect();
    let gwsum: f64 = gw.iter().sum();
    let dispatch_total = spec.total_load_mw * 1.02; // losses headroom
    for (&bus, &w) in gen_buses.iter().zip(&gw) {
        let p_max = spec.total_gen_capacity_mw * w / gwsum;
        let p0 = (dispatch_total * w / gwsum).min(p_max * 0.95);
        let c2 = rng.random_range(0.004..0.05);
        let c1 = rng.random_range(15.0..45.0);
        net.gens.push(Generator {
            bus,
            p_mw: p0,
            q_mvar: 0.0,
            vm_setpoint_pu: rng.random_range(1.02..1.032),
            p_min_mw: 0.0,
            p_max_mw: p_max,
            q_min_mvar: -0.4 * p_max,
            q_max_mvar: 0.6 * p_max,
            in_service: true,
            cost: GenCost { c2, c1, c0: 0.0 },
        });
    }
    // Slack = largest unit.
    let slack_gen = (0..spec.n_gen)
        .max_by(|&a, &b| net.gens[a].p_max_mw.total_cmp(&net.gens[b].p_max_mw))
        .ok_or(SynthError::NoSlack)?;
    let slack_bus = net.gens[slack_gen].bus;
    net.buses[slack_bus].kind = BusKind::Slack;
    net.buses[slack_bus].vm_pu = net.gens[slack_gen].vm_setpoint_pu;
    for g in &net.gens {
        if g.bus != slack_bus {
            net.buses[g.bus].kind = BusKind::Pv;
            net.buses[g.bus].vm_pu = g.vm_setpoint_pu;
        }
    }

    // ---- Reactive support: shunt capacitors at the heaviest LV loads.
    let mut lv_loads: Vec<(usize, f64)> = net
        .loads
        .iter()
        .filter(|l| l.bus >= n_hv)
        .map(|l| (l.bus, l.p_mw))
        .collect();
    lv_loads.sort_by(|a, b| b.1.total_cmp(&a.1));
    for &(bus, p) in lv_loads.iter().take((n_lv / 2).max(1)) {
        net.shunts.push(Shunt {
            bus,
            g_mw: 0.0,
            b_mvar: (0.45 * p).round(),
            in_service: true,
        });
    }

    // ---- Calibration pass 1: impedance homogenization against DC flows.
    let flows = dc_flows(&net)?;
    for (idx, br) in net.branches.iter_mut().enumerate() {
        let f = flows[idx].abs().max(0.15); // p.u.
        let max_angle = 0.045; // rad across any one branch at base case
        let x_cap = max_angle / f;
        if br.x_pu > x_cap {
            let scale = x_cap / br.x_pu;
            br.x_pu *= scale;
            br.r_pu *= scale;
        }
    }

    // ---- Calibration pass 2: thermal ratings from a DC N-1 sweep.
    let base = dc_flows(&net)?;
    let mut worst = base.iter().map(|f| f.abs()).collect::<Vec<f64>>();
    let n_br = net.branches.len();
    for out in 0..n_br {
        net.branches[out].in_service = false;
        // Skip if outage would island (ring design should prevent this).
        if crate::topology::connected_components(&net) == 1 {
            let f = dc_flows(&net)?;
            for (w, fi) in worst.iter_mut().zip(&f) {
                *w = w.max(fi.abs());
            }
        }
        net.branches[out].in_service = true;
    }
    // Per-bus load MVA, used to floor transformer ratings (DC calibration
    // sees only MW; transformers feeding reactive-heavy load pockets need
    // explicit headroom).
    let mut load_mva = vec![0.0f64; spec.n_bus];
    for l in &net.loads {
        load_mva[l.bus] += (l.p_mw * l.p_mw + l.q_mvar * l.q_mvar).sqrt();
    }
    let mut parallel_count = std::collections::HashMap::new();
    for br in &net.branches {
        if br.kind == BranchKind::Transformer {
            *parallel_count
                .entry((br.from_bus, br.to_bus))
                .or_insert(0usize) += 1;
        }
    }
    // The assumed power factor converts the DC MW calibration into an MVA
    // rating with room for reactive flow.
    let pf_assumed = 0.82;
    for (idx, br) in net.branches.iter_mut().enumerate() {
        let base_mva = base[idx].abs() * net.base_mva;
        let worst_mva = worst[idx] * net.base_mva;
        // Most corridors stay secure under N-1; a deterministic minority is
        // derated so the worst contingency overloads them (what Table 1
        // hunts for).
        let derate: f64 = rng.random_range(0.0..1.0);
        let n1_margin = if derate < 0.12 {
            rng.random_range(0.60..0.95)
        } else {
            rng.random_range(1.05..1.25)
        };
        let mut floor = 30.0f64;
        if br.kind == BranchKind::Transformer {
            let dup = parallel_count
                .get(&(br.from_bus, br.to_bus))
                .copied()
                .unwrap_or(1) as f64;
            // Each unit must carry the pocket alone when its twin trips.
            let carry = if dup > 1.0 { 1.0 } else { dup };
            floor = floor.max(1.3 * load_mva[br.to_bus] / carry);
        }
        let rating = (1.30 * base_mva).max(n1_margin * worst_mva).max(floor) / pf_assumed
            * spec.rating_margin;
        br.rating_mva = (rating / 5.0).ceil() * 5.0;
    }

    // The stressed-minority draw above is stochastic; on small cases the
    // floors and rounding can erase every derate. Guarantee at least one
    // deliberately stressed corridor so downstream N-1 analysis always
    // has something to find: derate the most-loaded corridor to ~115 %
    // of its worst post-outage flow.
    let has_stress = net
        .branches
        .iter()
        .enumerate()
        .any(|(idx, br)| worst[idx] * net.base_mva > br.rating_mva);
    if !has_stress {
        if let Some((idx, _)) = worst.iter().enumerate().max_by(|a, b| a.1.total_cmp(b.1)) {
            let worst_mva = worst[idx] * net.base_mva;
            net.branches[idx].rating_mva = (((worst_mva / 1.15) / 5.0).floor() * 5.0).max(5.0);
        }
    }

    Ok(net)
}

/// DC power flow: returns per-branch active flow in p.u. (from → to).
/// Internal calibration tool — the real solvers live in `gm-powerflow`.
pub(crate) fn dc_flows(net: &Network) -> Result<Vec<f64>, SynthError> {
    let n = net.n_bus();
    let slack = net.slack().ok_or(SynthError::NoSlack)?;
    // Injections in p.u.
    let (p_mw, _) = net.scheduled_injections();
    let mut p: Vec<f64> = p_mw.iter().map(|v| v / net.base_mva).collect();
    // Distribute the mismatch onto the slack so the system balances.
    let total: f64 = p.iter().sum();
    p[slack] -= total;

    // B matrix with the slack row/column pinned.
    let mut t = Triplets::new(n, n);
    for br in net.branches.iter().filter(|b| b.in_service) {
        let b = 1.0 / br.x_pu;
        let (i, j) = (br.from_bus, br.to_bus);
        if i != slack && j != slack {
            t.push(i, i, b);
            t.push(j, j, b);
            t.push(i, j, -b);
            t.push(j, i, -b);
        } else if i != slack {
            t.push(i, i, b);
        } else if j != slack {
            t.push(j, j, b);
        }
    }
    t.push(slack, slack, 1.0);
    p[slack] = 0.0;
    let bmat = t.to_csr();
    let lu = SparseLu::factor(&bmat).map_err(|_| SynthError::DcSingular)?;
    let theta = lu.solve(&p);
    Ok(net
        .branches
        .iter()
        .map(|br| {
            if br.in_service {
                (theta[br.from_bus] - theta[br.to_bus]) / br.x_pu
            } else {
                0.0
            }
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_spec() -> SynthSpec {
        SynthSpec {
            name: "synthetic 40-bus".into(),
            n_bus: 40,
            n_gen: 8,
            n_load: 25,
            n_line: 55,
            n_trafo: 6,
            total_load_mw: 900.0,
            total_gen_capacity_mw: 2100.0,
            seed: 7,
            rating_margin: 1.0,
        }
    }

    #[test]
    fn exact_inventory() {
        let net = generate(&small_spec()).unwrap();
        assert_eq!(net.n_bus(), 40);
        assert_eq!(net.gens.len(), 8);
        assert_eq!(net.loads.len(), 25);
        assert_eq!(net.n_lines(), 55);
        assert_eq!(net.n_transformers(), 6);
    }

    #[test]
    fn totals_match_spec() {
        let net = generate(&small_spec()).unwrap();
        assert!((net.total_load_mw() - 900.0).abs() < 1e-6);
        assert!((net.total_gen_capacity_mw() - 2100.0).abs() < 1e-6);
    }

    #[test]
    fn deterministic() {
        let a = generate(&small_spec()).unwrap();
        let b = generate(&small_spec()).unwrap();
        assert_eq!(a.branches.len(), b.branches.len());
        for (x, y) in a.branches.iter().zip(&b.branches) {
            assert_eq!(x.x_pu, y.x_pu);
            assert_eq!(x.rating_mva, y.rating_mva);
        }
        for (x, y) in a.loads.iter().zip(&b.loads) {
            assert_eq!(x.p_mw, y.p_mw);
        }
    }

    #[test]
    fn different_seed_different_network() {
        let mut s2 = small_spec();
        s2.seed = 8;
        let a = generate(&small_spec()).unwrap();
        let b = generate(&s2).unwrap();
        let same = a
            .branches
            .iter()
            .zip(&b.branches)
            .all(|(x, y)| x.x_pu == y.x_pu);
        assert!(!same);
    }

    #[test]
    fn validates_clean() {
        let net = generate(&small_spec()).unwrap();
        net.validate().expect("synthetic case must validate");
    }

    #[test]
    fn no_single_branch_outage_islands() {
        let net = generate(&small_spec()).unwrap();
        for i in 0..net.branches.len() {
            assert!(
                !crate::topology::outage_islands(&net, i),
                "branch {i} is a bridge"
            );
        }
    }

    #[test]
    fn base_case_dc_secure() {
        let net = generate(&small_spec()).unwrap();
        let flows = dc_flows(&net).unwrap();
        for (idx, br) in net.branches.iter().enumerate() {
            let loading = flows[idx].abs() * net.base_mva / br.rating_mva;
            assert!(
                loading <= 0.95,
                "branch {idx} base DC loading {loading:.2} too high"
            );
        }
    }

    #[test]
    fn some_n1_stress_exists() {
        // The deliberate derating should leave at least one branch whose
        // worst-case DC N-1 loading exceeds 100%.
        let mut net = generate(&small_spec()).unwrap();
        let n_br = net.branches.len();
        let mut max_loading = 0.0f64;
        for out in 0..n_br {
            net.branches[out].in_service = false;
            if crate::topology::connected_components(&net) == 1 {
                let f = dc_flows(&net).unwrap();
                for (idx, br) in net.branches.iter().enumerate() {
                    if idx != out && br.in_service {
                        max_loading = max_loading.max(f[idx].abs() * net.base_mva / br.rating_mva);
                    }
                }
            }
            net.branches[out].in_service = true;
        }
        assert!(
            max_loading > 1.0,
            "expected at least one N-1 overload, max loading {max_loading:.3}"
        );
        assert!(max_loading < 2.0, "overloads unrealistically large");
    }

    #[test]
    fn dc_power_balance() {
        let net = generate(&small_spec()).unwrap();
        let flows = dc_flows(&net).unwrap();
        // At every non-slack bus: injections equal sum of outgoing flows.
        let slack = net.slack().unwrap();
        let (p_mw, _) = net.scheduled_injections();
        let mut residual = vec![0.0f64; net.n_bus()];
        for (i, r) in residual.iter_mut().enumerate() {
            *r = p_mw[i] / net.base_mva;
        }
        for (idx, br) in net.branches.iter().enumerate() {
            residual[br.from_bus] -= flows[idx];
            residual[br.to_bus] += flows[idx];
        }
        for (i, r) in residual.iter().enumerate() {
            if i != slack {
                assert!(r.abs() < 1e-8, "bus {i} residual {r}");
            }
        }
    }
}
