//! Interconnect-scale synthetic cases (1k–10k buses).
//!
//! The paper's evaluation stops at IEEE 300; the ROADMAP north-star
//! ("production scale") means PEGASE-class networks — case1354, case2869,
//! case9241. This module grows the [`crate::synth`] recipe along the
//! network axis: instead of one HV/LV zone pair, a scale case is a set of
//! **areas**, each with its own 345 kV transmission ring, 138 kV
//! sub-transmission ring, and substation buses on parallel transformer
//! pairs, stitched together by an inter-area tie backbone (ring plus
//! skip-chords over the area graph, several 345 kV circuits per corridor).
//!
//! Design goals, in order:
//!
//! 1. **Solvable** — impedances are homogenized against a DC power flow
//!    (same pass as `synth`), so Newton converges from a flat start.
//! 2. **N-1-plausible ratings** — thermal ratings come from a *sampled*
//!    DC N-1 sweep: the `n1_samples` highest-|flow| corridors (always
//!    including every inter-area tie) are outaged and ratings are set
//!    against the worst observed flow, so the base case is secure and
//!    contingency analysis has realistic margins to probe. The sample cap
//!    bounds generation time at 10k buses (a full sweep would be ~14k DC
//!    solves).
//! 3. **Deterministic and inventory-driven** — everything derives from
//!    the [`ScaleSpec`] through a seeded [`SmallRng`]; two calls produce
//!    identical networks, and the per-area inventories (bus split, line
//!    chords, generator count) are fixed functions of the spec.
//!
//! Loaded networks are cached in `OnceLock` statics — benches and tools
//! request `synth9241` by name through [`crate::cases::load_case`] without
//! re-running calibration.

use crate::model::{Branch, BranchKind, Bus, BusKind, GenCost, Generator, Load, Network, Shunt};
use crate::synth::{dc_flows, SynthError};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;
use std::sync::OnceLock;

/// Canonical identifiers for the interconnect-scale synthetic cases.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum ScaleId {
    /// ~1.4k-bus case (case1354-class, 4 areas).
    Synth1354,
    /// ~2.9k-bus case (case2869-class, 6 areas).
    Synth2869,
    /// ~9.2k-bus case (case9241-class, 9 areas).
    Synth9241,
}

impl ScaleId {
    /// All scale cases, smallest first.
    pub const ALL: [ScaleId; 3] = [ScaleId::Synth1354, ScaleId::Synth2869, ScaleId::Synth9241];

    /// Canonical short name ("synth9241").
    pub fn short_name(self) -> &'static str {
        match self {
            ScaleId::Synth1354 => "synth1354",
            ScaleId::Synth2869 => "synth2869",
            ScaleId::Synth9241 => "synth9241",
        }
    }

    /// Display name.
    pub fn display_name(self) -> &'static str {
        match self {
            ScaleId::Synth1354 => "Synthetic 1354-bus interconnect",
            ScaleId::Synth2869 => "Synthetic 2869-bus interconnect",
            ScaleId::Synth9241 => "Synthetic 9241-bus interconnect",
        }
    }

    /// Bus count (the number in the case name).
    pub fn size(self) -> usize {
        match self {
            ScaleId::Synth1354 => 1354,
            ScaleId::Synth2869 => 2869,
            ScaleId::Synth9241 => 9241,
        }
    }

    /// The generation spec for this case. Seeds and knobs are pinned —
    /// changing them changes the case identity, so treat these like
    /// embedded data.
    pub fn spec(self) -> ScaleSpec {
        match self {
            ScaleId::Synth1354 => ScaleSpec {
                name: self.display_name().into(),
                n_bus: 1354,
                n_area: 4,
                seed: 0x1354,
                load_mw_per_bus: 54.0,
                rating_margin: 1.15,
                n1_samples: 64,
            },
            ScaleId::Synth2869 => ScaleSpec {
                name: self.display_name().into(),
                n_bus: 2869,
                n_area: 6,
                seed: 0x2869,
                load_mw_per_bus: 46.0,
                rating_margin: 1.15,
                n1_samples: 80,
            },
            ScaleId::Synth9241 => ScaleSpec {
                name: self.display_name().into(),
                n_bus: 9241,
                n_area: 9,
                seed: 0x9241,
                load_mw_per_bus: 34.0,
                rating_margin: 1.15,
                n1_samples: 96,
            },
        }
    }
}

/// Parameters of an interconnect-scale synthetic case.
///
/// Unlike [`crate::synth::SynthSpec`], branch/load/generator counts are
/// *derived* from the bus count (the PSTCA specs pin exact Table-2
/// inventories; at PEGASE scale the target is class-realistic densities,
/// not an exact inventory).
#[derive(Clone, Debug)]
pub struct ScaleSpec {
    /// Case name.
    pub name: String,
    /// Total bus count, split across areas.
    pub n_bus: usize,
    /// Number of areas (each with its own HV ring / LV ring / substations).
    pub n_area: usize,
    /// RNG seed (fixed per case for reproducibility).
    pub seed: u64,
    /// Average active demand per bus (MW); total load scales linearly.
    pub load_mw_per_bus: f64,
    /// Global multiplier on calibrated thermal ratings.
    pub rating_margin: f64,
    /// Cap on the number of outages in the rating-calibration DC N-1
    /// sweep (runtime size cap: a full sweep is O(branches) LU factors).
    pub n1_samples: usize,
}

impl ScaleSpec {
    fn check(&self) -> Result<(), SynthError> {
        let fail = |reason| Err(SynthError::InvalidSpec { reason });
        if self.n_area < 2 {
            return fail("scale cases need at least 2 areas");
        }
        if self.n_bus < self.n_area * 60 {
            return fail("need at least 60 buses per area");
        }
        if self.load_mw_per_bus <= 0.0 {
            return fail("load per bus must be positive");
        }
        if self.n1_samples == 0 {
            return fail("N-1 calibration needs at least one sample");
        }
        Ok(())
    }
}

/// Per-area bus layout: global offsets of the HV ring, LV ring, and
/// substation-pair blocks.
struct AreaLayout {
    base: usize,
    n_hv: usize,
    n_lv: usize,
    n_pair: usize,
}

impl AreaLayout {
    fn hv(&self, k: usize) -> usize {
        self.base + k % self.n_hv
    }
    fn lv(&self, k: usize) -> usize {
        self.base + self.n_hv + k % self.n_lv
    }
    fn pair(&self, k: usize) -> usize {
        self.base + self.n_hv + self.n_lv + k
    }
}

/// Generates an interconnect-scale network for a spec.
///
/// Deterministic: the same spec always produces the same network,
/// bit-for-bit.
pub fn generate_scale(spec: &ScaleSpec) -> Result<Network, SynthError> {
    spec.check()?;
    let mut rng = SmallRng::seed_from_u64(spec.seed);

    // ---- Area partition: near-equal bus counts, remainder to the first
    // areas. Within an area: ~22% HV ring, ~12% substation pairs, the
    // rest the LV ring (degree-2/3 distribution buses — the bulk of any
    // real interconnect).
    let mut layouts: Vec<AreaLayout> = Vec::with_capacity(spec.n_area);
    let mut base = 0usize;
    for a in 0..spec.n_area {
        let m = spec.n_bus / spec.n_area + usize::from(a < spec.n_bus % spec.n_area);
        let n_hv = (m * 22 / 100).max(8);
        let n_pair = m * 12 / 100;
        let n_lv = m - n_hv - n_pair;
        if n_lv < 8 {
            return Err(SynthError::InvalidSpec {
                reason: "area too small for an LV ring",
            });
        }
        layouts.push(AreaLayout {
            base,
            n_hv,
            n_lv,
            n_pair,
        });
        base += m;
    }
    debug_assert_eq!(base, spec.n_bus);

    let mut net = Network::new(spec.name.clone());
    net.base_mva = 100.0;

    for (a, lay) in layouts.iter().enumerate() {
        let m = lay.n_hv + lay.n_lv + lay.n_pair;
        for i in 0..m {
            let hv = i < lay.n_hv;
            let mut bus = Bus::pq((lay.base + i) as u32 + 1, if hv { 345.0 } else { 138.0 });
            bus.vmin_pu = 0.94;
            bus.vmax_pu = 1.06;
            bus.area = a as u32 + 1;
            net.buses.push(bus);
        }
    }

    // ---- Topology. `edges` dedups; `lines` keeps deterministic insertion
    // order (per-area rings, then chords, then inter-area ties) so branch
    // indices are stable.
    let mut edges: BTreeSet<(usize, usize)> = BTreeSet::new();
    let mut lines: Vec<(usize, usize, bool)> = Vec::new(); // (a, b, is_hv)
    let push_line = |edges: &mut BTreeSet<(usize, usize)>,
                     lines: &mut Vec<(usize, usize, bool)>,
                     a: usize,
                     b: usize,
                     hv: bool| {
        let key = (a.min(b), a.max(b));
        if a != b && edges.insert(key) {
            lines.push((key.0, key.1, hv));
            true
        } else {
            false
        }
    };

    for lay in &layouts {
        // HV ring + local chords (strides 2..n_hv/4 keep chords
        // geographically local, matching real grid degree profiles).
        for k in 0..lay.n_hv {
            push_line(&mut edges, &mut lines, lay.hv(k), lay.hv(k + 1), true);
        }
        let hv_chords = lay.n_hv * 45 / 100;
        let mut added = 0usize;
        let mut guard = 0usize;
        while added < hv_chords && guard < hv_chords * 300 + 1000 {
            guard += 1;
            let i = rng.random_range(0..lay.n_hv);
            let stride = rng.random_range(2..=(lay.n_hv / 4).max(2));
            if push_line(&mut edges, &mut lines, lay.hv(i), lay.hv(i + stride), true) {
                added += 1;
            }
        }
        // LV ring + sparser chords.
        for k in 0..lay.n_lv {
            push_line(&mut edges, &mut lines, lay.lv(k), lay.lv(k + 1), false);
        }
        let lv_chords = lay.n_lv * 20 / 100;
        added = 0;
        guard = 0;
        while added < lv_chords && guard < lv_chords * 300 + 1000 {
            guard += 1;
            let i = rng.random_range(0..lay.n_lv);
            let stride = rng.random_range(2..=(lay.n_lv / 6).max(2));
            if push_line(&mut edges, &mut lines, lay.lv(i), lay.lv(i + stride), false) {
                added += 1;
            }
        }
    }

    // ---- Inter-area ties: ring over areas plus skip-chords, several
    // parallel 345 kV corridors per adjacent pair. Every tie endpoint is
    // an HV bus; >= 3 circuits per corridor so no tie outage islands an
    // area, and the area graph itself is 2-connected.
    let mut tie_pairs: Vec<(usize, usize)> = (0..spec.n_area)
        .map(|a| (a, (a + 1) % spec.n_area))
        .collect();
    if spec.n_area >= 5 {
        for a in 0..spec.n_area {
            tie_pairs.push((a, (a + 2) % spec.n_area));
        }
    }
    let tie_start = lines.len();
    for &(a, b) in &tie_pairs {
        let circuits = 3 + rng.random_range(0..2usize);
        let mut placed = 0usize;
        let mut guard = 0usize;
        while placed < circuits && guard < 200 {
            guard += 1;
            let i = layouts[a].hv(rng.random_range(0..layouts[a].n_hv));
            let j = layouts[b].hv(rng.random_range(0..layouts[b].n_hv));
            if push_line(&mut edges, &mut lines, i, j, true) {
                placed += 1;
            }
        }
        if placed < 2 {
            return Err(SynthError::InvalidSpec {
                reason: "could not place enough inter-area ties",
            });
        }
    }

    // ---- Line impedances (provisional; homogenized below). Ties are
    // long 345 kV corridors: low series reactance after homogenization,
    // meaningful charging.
    for (idx, &(a, b, hv)) in lines.iter().enumerate() {
        let tie = idx >= tie_start;
        let x = if tie {
            rng.random_range(0.008..0.022)
        } else if hv {
            rng.random_range(0.015..0.06)
        } else {
            rng.random_range(0.05..0.18)
        };
        let r = x * if hv { 0.2 } else { 0.4 };
        let bch = x * if hv { 0.6 } else { 0.1 };
        net.branches.push(Branch::line(a, b, r, x, bch, 0.0));
    }

    // ---- Transformers: ring transformers couple each LV ring to its HV
    // ring; substation pair buses hang off HV buses through two parallel
    // units (single-unit outage keeps the pocket energized).
    for lay in &layouts {
        let t_ring = (lay.n_lv / 8).max(3);
        for t in 0..t_ring {
            let hv_bus = lay.hv(t * lay.n_hv / t_ring);
            let lv_bus = lay.lv(t * lay.n_lv / t_ring);
            let x = rng.random_range(0.03..0.08);
            let tap = 1.0 + rng.random_range(-3i32..=2) as f64 * 0.0125;
            net.branches
                .push(Branch::transformer(hv_bus, lv_bus, 0.003, x, tap, 0.0));
        }
        for p in 0..lay.n_pair {
            let pair_bus = lay.pair(p);
            let hv_bus = lay.hv(p * lay.n_hv / lay.n_pair.max(1) + 1);
            for dup in 0..2 {
                let x = rng.random_range(0.05..0.10) + dup as f64 * 0.005;
                let tap = 1.0 + rng.random_range(-2i32..=2) as f64 * 0.0125;
                net.branches
                    .push(Branch::transformer(hv_bus, pair_bus, 0.003, x, tap, 0.0));
            }
        }
    }

    // ---- Loads. Per-area demand factors are deliberately uneven
    // (0.7–1.3×) so the tie corridors carry real inter-area transfers.
    // Every substation bus has a load; LV ring buses mostly do; a few HV
    // buses model directly-connected industrial demand.
    let area_demand: Vec<f64> = (0..spec.n_area)
        .map(|_| 0.7 + 0.6 * rng.random_range(0.0..1.0))
        .collect();
    let mut load_entries: Vec<(usize, f64)> = Vec::new(); // (bus, weight)
    for (a, lay) in layouts.iter().enumerate() {
        let af = area_demand[a];
        for p in 0..lay.n_pair {
            let u: f64 = rng.random_range(0.0..1.0);
            load_entries.push((lay.pair(p), (1.5 * u).exp() * af));
        }
        for k in 0..lay.n_lv {
            if rng.random_range(0.0..1.0) < 0.7 {
                let u: f64 = rng.random_range(0.0..1.0);
                load_entries.push((lay.lv(k), (1.5 * u).exp() * 0.45 * af));
            }
        }
        for k in 0..lay.n_hv {
            if rng.random_range(0.0..1.0) < 0.08 {
                let u: f64 = rng.random_range(0.0..1.0);
                load_entries.push((lay.hv(k), (1.5 * u).exp() * 1.6 * af));
            }
        }
    }
    let total_load = spec.load_mw_per_bus * spec.n_bus as f64;
    let wsum: f64 = load_entries.iter().map(|e| e.1).sum();
    for &(bus, w) in &load_entries {
        let p = total_load * w / wsum;
        let pf: f64 = rng.random_range(0.92..0.985);
        let q = p * (1.0 / (pf * pf) - 1.0f64).sqrt();
        net.loads.push(Load {
            bus,
            p_mw: p,
            q_mvar: q,
            in_service: true,
        });
    }

    // ---- Generators: on HV buses, spread around each area ring. The
    // per-area generation factor is anti-correlated with demand (2 - af),
    // which is what actually forces power across the ties.
    let total_capacity = total_load * 2.2;
    let mut gen_entries: Vec<(usize, f64)> = Vec::new();
    for (a, lay) in layouts.iter().enumerate() {
        let gf = 2.0 - area_demand[a];
        let n_gen_a = (lay.n_hv / 3).max(3);
        for g in 0..n_gen_a {
            let bus = lay.hv(g * lay.n_hv / n_gen_a);
            let u: f64 = rng.random_range(0.0..1.0);
            gen_entries.push((bus, (2.0 * u).exp() * gf));
        }
    }
    // A bus can host at most one generator record here; dedup keeps the
    // first (deterministic) and folds the weight in.
    gen_entries.sort_by_key(|e| e.0);
    gen_entries.dedup_by(|b, a| {
        if a.0 == b.0 {
            a.1 += b.1;
            true
        } else {
            false
        }
    });
    let gwsum: f64 = gen_entries.iter().map(|e| e.1).sum();
    let dispatch_total = total_load * 1.02; // losses headroom
    for &(bus, w) in &gen_entries {
        let p_max = total_capacity * w / gwsum;
        let p0 = (dispatch_total * w / gwsum).min(p_max * 0.95);
        let c2 = rng.random_range(0.004..0.05);
        let c1 = rng.random_range(15.0..45.0);
        net.gens.push(Generator {
            bus,
            p_mw: p0,
            q_mvar: 0.0,
            vm_setpoint_pu: rng.random_range(1.02..1.032),
            p_min_mw: 0.0,
            p_max_mw: p_max,
            q_min_mvar: -0.4 * p_max,
            q_max_mvar: 0.6 * p_max,
            in_service: true,
            cost: GenCost { c2, c1, c0: 0.0 },
        });
    }
    let slack_gen = (0..net.gens.len())
        .max_by(|&a, &b| net.gens[a].p_max_mw.total_cmp(&net.gens[b].p_max_mw))
        .ok_or(SynthError::NoSlack)?;
    let slack_bus = net.gens[slack_gen].bus;
    net.buses[slack_bus].kind = BusKind::Slack;
    net.buses[slack_bus].vm_pu = net.gens[slack_gen].vm_setpoint_pu;
    for g in &net.gens {
        if g.bus != slack_bus {
            net.buses[g.bus].kind = BusKind::Pv;
            net.buses[g.bus].vm_pu = g.vm_setpoint_pu;
        }
    }

    // ---- Reactive support: shunt capacitors at the heaviest non-HV
    // loads in each area (per-area so no area's LV pockets go bare).
    for lay in &layouts {
        let hv_end = lay.base + lay.n_hv;
        let area_end = lay.base + lay.n_hv + lay.n_lv + lay.n_pair;
        let mut lv_loads: Vec<(usize, f64)> = net
            .loads
            .iter()
            .filter(|l| l.bus >= hv_end && l.bus < area_end)
            .map(|l| (l.bus, l.p_mw))
            .collect();
        lv_loads.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        for &(bus, p) in lv_loads.iter().take((lv_loads.len() / 2).max(1)) {
            net.shunts.push(Shunt {
                bus,
                g_mw: 0.0,
                b_mvar: (0.45 * p).round(),
                in_service: true,
            });
        }
    }

    // ---- Calibration pass 1: impedance homogenization against DC flows
    // (same invariant as `synth::generate`: <= ~0.045 rad across any
    // branch at base case, which keeps Newton in its basin from a flat
    // start).
    let flows = dc_flows(&net)?;
    for (idx, br) in net.branches.iter_mut().enumerate() {
        let f = flows[idx].abs().max(0.15);
        let x_cap = 0.045 / f;
        if br.x_pu > x_cap {
            let scale = x_cap / br.x_pu;
            br.x_pu *= scale;
            br.r_pu *= scale;
        }
    }

    // ---- Calibration pass 2: thermal ratings from a *sampled* DC N-1
    // sweep. Outage set = every inter-area tie plus the highest-|flow|
    // corridors, capped at `n1_samples` (the runtime size cap that keeps
    // 10k-bus generation tractable).
    let base_flows = dc_flows(&net)?;
    let mut worst: Vec<f64> = base_flows.iter().map(|f| f.abs()).collect();
    let mut outages: Vec<usize> = (tie_start..lines.len()).collect();
    let mut by_flow: Vec<usize> = (0..net.branches.len()).collect();
    by_flow.sort_by(|&a, &b| {
        base_flows[b]
            .abs()
            .total_cmp(&base_flows[a].abs())
            .then(a.cmp(&b))
    });
    for idx in by_flow {
        if outages.len() >= spec.n1_samples {
            break;
        }
        if !outages.contains(&idx) {
            outages.push(idx);
        }
    }
    for &out in &outages {
        net.branches[out].in_service = false;
        if crate::topology::connected_components(&net) == 1 {
            let f = dc_flows(&net)?;
            for (w, fi) in worst.iter_mut().zip(&f) {
                *w = w.max(fi.abs());
            }
        }
        net.branches[out].in_service = true;
    }

    // Transformer rating floors (DC calibration sees only MW; units
    // feeding reactive-heavy pockets need explicit MVA headroom).
    let mut load_mva = vec![0.0f64; spec.n_bus];
    for l in &net.loads {
        load_mva[l.bus] += (l.p_mw * l.p_mw + l.q_mvar * l.q_mvar).sqrt();
    }
    let mut parallel_count = std::collections::HashMap::new();
    for br in &net.branches {
        if br.kind == BranchKind::Transformer {
            *parallel_count
                .entry((br.from_bus, br.to_bus))
                .or_insert(0usize) += 1;
        }
    }
    let pf_assumed = 0.82;
    for (idx, br) in net.branches.iter_mut().enumerate() {
        let base_mva = base_flows[idx].abs() * net.base_mva;
        let worst_mva = worst[idx] * net.base_mva;
        // A small deterministic minority of corridors is derated into the
        // N-1-stressed regime; at interconnect scale 1.5% still leaves a
        // few hundred corridors for contingency analysis to find.
        let derate: f64 = rng.random_range(0.0..1.0);
        let n1_margin = if derate < 0.015 {
            rng.random_range(0.60..0.95)
        } else {
            rng.random_range(1.05..1.25)
        };
        let mut floor = 30.0f64;
        if br.kind == BranchKind::Transformer {
            let dup = parallel_count
                .get(&(br.from_bus, br.to_bus))
                .copied()
                .unwrap_or(1) as f64;
            let carry = if dup > 1.0 { 1.0 } else { dup };
            floor = floor.max(1.3 * load_mva[br.to_bus] / carry);
        }
        let rating = (1.30 * base_mva).max(n1_margin * worst_mva).max(floor) / pf_assumed
            * spec.rating_margin;
        br.rating_mva = (rating / 5.0).ceil() * 5.0;
    }

    Ok(net)
}

/// Fuzzy identification over the scale cases: `synth9241` scores 1.0,
/// `case9241` / `9241-bus` 0.95, bare `9241` 0.8.
pub fn identify_scale(input: &str) -> Option<(ScaleId, f64)> {
    let norm: String = input
        .trim()
        .to_ascii_lowercase()
        .chars()
        .filter(|c| c.is_ascii_alphanumeric())
        .collect();
    if norm.is_empty() {
        return None;
    }
    for id in ScaleId::ALL {
        if norm == id.short_name() {
            return Some((id, 1.0));
        }
    }
    let digits: String = norm.chars().filter(|c| c.is_ascii_digit()).collect();
    let size: usize = digits.parse().ok()?;
    let id = ScaleId::ALL.into_iter().find(|c| c.size() == size)?;
    let conf = if norm.contains("synth") || norm.contains("case") || norm.contains("bus") {
        0.95
    } else if norm == digits {
        0.8
    } else {
        0.6
    };
    Some((id, conf))
}

/// Loads (and caches) a scale case. Generation at 9241 buses runs a
/// sampled DC N-1 calibration (~`n1_samples` LU factorizations), so the
/// first call per process takes seconds; later calls are free.
pub fn load_scale(id: ScaleId) -> &'static Network {
    static CACHE: [OnceLock<Network>; 3] = [OnceLock::new(), OnceLock::new(), OnceLock::new()];
    let slot = match id {
        ScaleId::Synth1354 => &CACHE[0],
        ScaleId::Synth2869 => &CACHE[1],
        ScaleId::Synth9241 => &CACHE[2],
    };
    slot.get_or_init(|| generate_scale(&id.spec()).expect("embedded scale spec must generate"))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A deliberately small spec so unit tests stay fast; the real cases
    /// are exercised by the tier-1 `scale_cases` integration tests (1354
    /// only) and `bench_scale`.
    fn tiny_spec() -> ScaleSpec {
        ScaleSpec {
            name: "tiny 3-area".into(),
            n_bus: 260,
            n_area: 3,
            seed: 42,
            load_mw_per_bus: 20.0,
            rating_margin: 1.15,
            n1_samples: 24,
        }
    }

    #[test]
    fn generates_and_validates() {
        let net = generate_scale(&tiny_spec()).unwrap();
        assert_eq!(net.n_bus(), 260);
        assert_eq!(crate::topology::connected_components(&net), 1);
        net.validate().expect("scale case must validate");
    }

    #[test]
    fn deterministic() {
        let a = generate_scale(&tiny_spec()).unwrap();
        let b = generate_scale(&tiny_spec()).unwrap();
        assert_eq!(a.branches.len(), b.branches.len());
        for (x, y) in a.branches.iter().zip(&b.branches) {
            assert_eq!(x.x_pu, y.x_pu);
            assert_eq!(x.rating_mva, y.rating_mva);
        }
        for (x, y) in a.loads.iter().zip(&b.loads) {
            assert_eq!(x.p_mw, y.p_mw);
        }
    }

    #[test]
    fn areas_are_tied_and_unbalanced() {
        let net = generate_scale(&tiny_spec()).unwrap();
        // At least one branch crosses areas, and total area demand is
        // uneven enough that ties must carry power.
        let ties = net
            .branches
            .iter()
            .filter(|br| net.buses[br.from_bus].area != net.buses[br.to_bus].area)
            .count();
        assert!(
            ties >= 6,
            "expected >= 2 corridors x >= 3 circuits, got {ties}"
        );
        let mut area_load = [0.0f64; 3];
        for l in &net.loads {
            area_load[net.buses[l.bus].area as usize - 1] += l.p_mw;
        }
        let max = area_load.iter().cloned().fold(0.0, f64::max);
        let min = area_load.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(max / min > 1.05, "area demand suspiciously uniform");
    }

    #[test]
    fn no_tie_outage_islands() {
        let net = generate_scale(&tiny_spec()).unwrap();
        for (idx, br) in net.branches.iter().enumerate() {
            if net.buses[br.from_bus].area != net.buses[br.to_bus].area {
                assert!(
                    !crate::topology::outage_islands(&net, idx),
                    "tie {idx} is a bridge"
                );
            }
        }
    }

    #[test]
    fn base_case_dc_secure() {
        let net = generate_scale(&tiny_spec()).unwrap();
        let flows = dc_flows(&net).unwrap();
        for (idx, br) in net.branches.iter().enumerate() {
            let loading = flows[idx].abs() * net.base_mva / br.rating_mva;
            assert!(loading <= 0.95, "branch {idx} base loading {loading:.2}");
        }
    }

    #[test]
    fn identify_scale_names() {
        assert_eq!(identify_scale("synth9241"), Some((ScaleId::Synth9241, 1.0)));
        let (id, conf) = identify_scale("case1354").unwrap();
        assert_eq!(id, ScaleId::Synth1354);
        assert!(conf >= 0.95);
        assert_eq!(identify_scale("2869").unwrap().0, ScaleId::Synth2869);
        assert_eq!(identify_scale("case999"), None);
    }

    #[test]
    fn bad_specs_are_typed_errors() {
        let mut s = tiny_spec();
        s.n_area = 1;
        assert!(matches!(
            generate_scale(&s),
            Err(SynthError::InvalidSpec { .. })
        ));
        let mut s = tiny_spec();
        s.n1_samples = 0;
        assert!(matches!(
            generate_scale(&s),
            Err(SynthError::InvalidSpec { .. })
        ));
    }
}
