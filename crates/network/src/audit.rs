//! `GridLint` — the model-level audit pass behind `gm-audit lint-case`.
//!
//! A single walk over a [`Network`] that checks structural and electrical
//! invariants and returns machine-readable [`AuditFinding`]s. The pass is
//! a strict superset of [`Network::validate`]: every [`ModelError`] the
//! legacy validator reported maps to an error-severity finding here, and
//! `validate()` now delegates to this pass so the two can never drift.
//!
//! Rule classes (finding `code` in parentheses):
//!
//! - connectivity: the in-service graph must be a single island
//!   (`GM-ISLAND`);
//! - reference bus: exactly one slack (`GM-SLACK-NONE`,
//!   `GM-SLACK-MULTI`);
//! - identity: unique external bus ids, in-range element references
//!   (`GM-DUP-BUS`, `GM-DANGLING`);
//! - limit ordering: `p_min ≤ p_max`, `q_min ≤ q_max`, `v_min < v_max`
//!   (`GM-GEN-LIMITS`, `GM-VOLT-LIMITS`);
//! - impedance sanity: non-degenerate reactance, non-negative line
//!   resistance and reactance (`GM-DEGENERATE-X`, `GM-NEG-IMPEDANCE`);
//! - per-unit base consistency: positive system MVA base, matching
//!   endpoint voltage bases across plain lines (`GM-BASE-MVA`,
//!   `GM-KV-MISMATCH`);
//! - dispatch feasibility: total in-service capacity covers total load
//!   with loss headroom, and must-run minimums do not exceed demand
//!   (`GM-CAPACITY`, `GM-MUSTRUN`);
//! - operating point plausibility: scheduled voltages inside their
//!   limits (`GM-VM-RANGE`).

use crate::model::{BranchKind, BusKind, ModelError, Network};
use crate::topology;
use serde::{Deserialize, Serialize};

/// How bad a finding is.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Severity {
    /// Informational; no action required.
    Info,
    /// Suspicious but solvable; review recommended.
    Warning,
    /// Invariant violation; solvers may fail or mislead.
    Error,
}

impl std::fmt::Display for Severity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Severity::Info => write!(f, "info"),
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// One audit finding: a rule violation tied to a network entity.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct AuditFinding {
    /// Severity class.
    pub severity: Severity,
    /// Stable rule identifier (`GM-...`), suitable for suppression lists
    /// and CI grepping.
    pub code: String,
    /// The entity the finding is about (`bus 12`, `branch 40`, `case`).
    pub entity: String,
    /// Human-readable explanation with the offending values.
    pub message: String,
}

impl std::fmt::Display for AuditFinding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: [{}] {}: {}",
            self.severity, self.code, self.entity, self.message
        )
    }
}

/// The model-lint pass. Construct with [`GridLint::default`] and run
/// [`GridLint::audit`]; thresholds are fields so callers can tune them.
#[derive(Clone, Debug)]
pub struct GridLint {
    /// Reactance magnitude below which a branch is degenerate (p.u.).
    pub min_reactance_pu: f64,
    /// Required capacity margin over total load (1.02 = 2 % headroom
    /// for losses) before `GM-CAPACITY` downgrades from error to warning.
    pub loss_headroom: f64,
}

impl Default for GridLint {
    fn default() -> Self {
        GridLint {
            min_reactance_pu: 1e-9,
            loss_headroom: 1.02,
        }
    }
}

/// Internal accumulator that grows the finding list and, for rules the
/// legacy validator also enforced, the matching [`ModelError`].
#[derive(Default)]
struct Report {
    findings: Vec<AuditFinding>,
    errors: Vec<ModelError>,
}

impl Report {
    fn push(
        &mut self,
        severity: Severity,
        code: &str,
        entity: impl Into<String>,
        message: impl Into<String>,
        legacy: Option<ModelError>,
    ) {
        self.findings.push(AuditFinding {
            severity,
            code: code.to_string(),
            entity: entity.into(),
            message: message.into(),
        });
        if let Some(e) = legacy {
            self.errors.push(e);
        }
    }
}

impl GridLint {
    /// Runs every rule and returns all findings, errors first.
    pub fn audit(&self, net: &Network) -> Vec<AuditFinding> {
        let mut findings = self.run(net).findings;
        findings.sort_by_key(|f| std::cmp::Reverse(f.severity));
        findings
    }

    /// Runs the pass and returns only the legacy [`ModelError`] view —
    /// the exact set (and order) [`Network::validate`] historically
    /// produced. [`Network::validate`] delegates here.
    pub fn check_model(&self, net: &Network) -> Result<(), Vec<ModelError>> {
        let errors = self.run(net).errors;
        if errors.is_empty() {
            Ok(())
        } else {
            Err(errors)
        }
    }

    fn run(&self, net: &Network) -> Report {
        let mut rep = Report::default();
        let n = net.n_bus();

        // -- Identity: unique external bus ids.
        let mut ids: Vec<u32> = net.buses.iter().map(|b| b.id).collect();
        ids.sort_unstable();
        for w in ids.windows(2) {
            if w[0] == w[1] {
                rep.push(
                    Severity::Error,
                    "GM-DUP-BUS",
                    format!("bus {}", w[0]),
                    format!("external bus id {} appears more than once", w[0]),
                    Some(ModelError::DuplicateBusId { id: w[0] }),
                );
            }
        }

        // -- Reference bus: exactly one slack.
        let slacks: Vec<u32> = net
            .buses
            .iter()
            .filter(|b| b.kind == BusKind::Slack)
            .map(|b| b.id)
            .collect();
        match slacks.len() {
            0 => rep.push(
                Severity::Error,
                "GM-SLACK-NONE",
                "case",
                "no reference (slack) bus is defined",
                Some(ModelError::NoSlack),
            ),
            1 => {}
            _ => rep.push(
                Severity::Error,
                "GM-SLACK-MULTI",
                "case",
                format!("multiple reference buses defined: {slacks:?}"),
                Some(ModelError::MultipleSlack { buses: slacks }),
            ),
        }

        // -- Per-bus limit ordering and operating point.
        for b in &net.buses {
            if b.vmin_pu > b.vmax_pu {
                rep.push(
                    Severity::Error,
                    "GM-VOLT-LIMITS",
                    format!("bus {}", b.id),
                    format!(
                        "voltage limits inverted: vmin {} > vmax {}",
                        b.vmin_pu, b.vmax_pu
                    ),
                    Some(ModelError::BadVoltageLimits { id: b.id }),
                );
            } else if b.vm_pu < b.vmin_pu || b.vm_pu > b.vmax_pu {
                rep.push(
                    Severity::Warning,
                    "GM-VM-RANGE",
                    format!("bus {}", b.id),
                    format!(
                        "scheduled voltage {} p.u. outside limits [{}, {}]",
                        b.vm_pu, b.vmin_pu, b.vmax_pu
                    ),
                    None,
                );
            }
        }

        // -- Element references and generator limit ordering.
        let mut dangling = false;
        for (i, l) in net.loads.iter().enumerate() {
            if l.bus >= n {
                dangling = true;
                rep.push(
                    Severity::Error,
                    "GM-DANGLING",
                    format!("load {i}"),
                    format!("references nonexistent bus index {}", l.bus),
                    Some(ModelError::DanglingReference {
                        element: format!("load {i}"),
                        bus: l.bus,
                    }),
                );
            }
        }
        for (i, g) in net.gens.iter().enumerate() {
            if g.bus >= n {
                dangling = true;
                rep.push(
                    Severity::Error,
                    "GM-DANGLING",
                    format!("gen {i}"),
                    format!("references nonexistent bus index {}", g.bus),
                    Some(ModelError::DanglingReference {
                        element: format!("gen {i}"),
                        bus: g.bus,
                    }),
                );
            }
            if g.p_min_mw > g.p_max_mw || g.q_min_mvar > g.q_max_mvar {
                rep.push(
                    Severity::Error,
                    "GM-GEN-LIMITS",
                    format!("gen {i}"),
                    format!(
                        "limits inverted: P [{}, {}] MW, Q [{}, {}] MVAr",
                        g.p_min_mw, g.p_max_mw, g.q_min_mvar, g.q_max_mvar
                    ),
                    Some(ModelError::BadGenLimits { index: i }),
                );
            }
        }
        for (i, br) in net.branches.iter().enumerate() {
            if br.from_bus >= n || br.to_bus >= n {
                dangling = true;
                rep.push(
                    Severity::Error,
                    "GM-DANGLING",
                    format!("branch {i}"),
                    format!(
                        "references nonexistent bus index {}",
                        br.from_bus.max(br.to_bus)
                    ),
                    Some(ModelError::DanglingReference {
                        element: format!("branch {i}"),
                        bus: br.from_bus.max(br.to_bus),
                    }),
                );
                continue;
            }
            if br.x_pu.abs() < self.min_reactance_pu {
                rep.push(
                    Severity::Error,
                    "GM-DEGENERATE-X",
                    format!("branch {i}"),
                    format!("series reactance |{}| p.u. is effectively zero", br.x_pu),
                    Some(ModelError::DegenerateBranch { index: i }),
                );
            } else if br.kind == BranchKind::Line && (br.x_pu < 0.0 || br.r_pu < 0.0) {
                // Negative reactance is legitimate on series-compensated
                // transformer models, never on a plain pi-model line.
                rep.push(
                    Severity::Error,
                    "GM-NEG-IMPEDANCE",
                    format!("branch {i}"),
                    format!(
                        "line has nonpositive series impedance: r {} x {} p.u.",
                        br.r_pu, br.x_pu
                    ),
                    None,
                );
            }
            if br.kind == BranchKind::Line
                && br.from_bus < n
                && br.to_bus < n
                && (net.buses[br.from_bus].base_kv - net.buses[br.to_bus].base_kv).abs() > 1e-6
            {
                rep.push(
                    Severity::Warning,
                    "GM-KV-MISMATCH",
                    format!("branch {i}"),
                    format!(
                        "plain line joins different voltage bases: {} kV vs {} kV \
                         (should this be a transformer?)",
                        net.buses[br.from_bus].base_kv, net.buses[br.to_bus].base_kv
                    ),
                    None,
                );
            }
        }
        for (i, s) in net.shunts.iter().enumerate() {
            if s.bus >= n {
                dangling = true;
                rep.push(
                    Severity::Error,
                    "GM-DANGLING",
                    format!("shunt {i}"),
                    format!("references nonexistent bus index {}", s.bus),
                    Some(ModelError::DanglingReference {
                        element: format!("shunt {i}"),
                        bus: s.bus,
                    }),
                );
            }
        }

        // -- Per-unit base consistency.
        if net.base_mva <= 0.0 {
            rep.push(
                Severity::Error,
                "GM-BASE-MVA",
                "case",
                format!("system MVA base must be positive, got {}", net.base_mva),
                None,
            );
        }

        // -- Dispatch feasibility: capacity vs demand.
        let load = net.total_load_mw();
        let capacity = net.total_gen_capacity_mw();
        if load > 0.0 {
            if capacity < load {
                rep.push(
                    Severity::Error,
                    "GM-CAPACITY",
                    "case",
                    format!("in-service capacity {capacity:.1} MW cannot cover load {load:.1} MW"),
                    None,
                );
            } else if capacity < load * self.loss_headroom {
                rep.push(
                    Severity::Warning,
                    "GM-CAPACITY",
                    "case",
                    format!(
                        "capacity {capacity:.1} MW leaves under {:.0} % headroom over \
                         load {load:.1} MW; losses may make dispatch infeasible",
                        (self.loss_headroom - 1.0) * 100.0
                    ),
                    None,
                );
            }
            let must_run: f64 = net
                .gens
                .iter()
                .filter(|g| g.in_service)
                .map(|g| g.p_min_mw)
                .sum();
            if must_run > load {
                rep.push(
                    Severity::Error,
                    "GM-MUSTRUN",
                    "case",
                    format!("sum of minimum outputs {must_run:.1} MW exceeds load {load:.1} MW"),
                    None,
                );
            }
        }

        // -- Connectivity (meaningful only once references are sound;
        //    the legacy validator additionally required *no* prior
        //    errors before checking, which `check_model` preserves).
        if !dangling && n > 0 {
            let comps = topology::connected_components(net);
            if comps > 1 {
                rep.push(
                    Severity::Error,
                    "GM-ISLAND",
                    "case",
                    format!("in-service network splits into {comps} islands"),
                    if rep.errors.is_empty() {
                        Some(ModelError::Islanded { components: comps })
                    } else {
                        None
                    },
                );
            }
        }

        rep
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Branch, Bus, BusKind, GenCost, Generator, Load};

    fn two_bus() -> Network {
        let mut net = Network::new("audit-two-bus");
        let mut slack = Bus::pq(1, 138.0);
        slack.kind = BusKind::Slack;
        net.buses.push(slack);
        net.buses.push(Bus::pq(2, 138.0));
        net.branches
            .push(Branch::line(0, 1, 0.01, 0.1, 0.02, 100.0));
        net.loads.push(Load {
            bus: 1,
            p_mw: 50.0,
            q_mvar: 10.0,
            in_service: true,
        });
        net.gens.push(Generator {
            bus: 0,
            p_mw: 50.0,
            q_mvar: 0.0,
            vm_setpoint_pu: 1.0,
            p_min_mw: 0.0,
            p_max_mw: 200.0,
            q_min_mvar: -100.0,
            q_max_mvar: 100.0,
            in_service: true,
            cost: GenCost {
                c2: 0.01,
                c1: 20.0,
                c0: 0.0,
            },
        });
        net
    }

    fn codes(findings: &[AuditFinding]) -> Vec<&str> {
        findings.iter().map(|f| f.code.as_str()).collect()
    }

    #[test]
    fn clean_network_has_no_findings() {
        assert!(GridLint::default().audit(&two_bus()).is_empty());
    }

    #[test]
    fn islanded_bus_flagged() {
        let mut net = two_bus();
        net.branches[0].in_service = false;
        let f = GridLint::default().audit(&net);
        assert!(codes(&f).contains(&"GM-ISLAND"), "{f:?}");
        assert_eq!(f[0].severity, Severity::Error);
        assert!(f[0].message.contains("2 islands"), "{}", f[0].message);
    }

    #[test]
    fn dual_slack_flagged() {
        let mut net = two_bus();
        net.buses[1].kind = BusKind::Slack;
        let f = GridLint::default().audit(&net);
        assert!(codes(&f).contains(&"GM-SLACK-MULTI"), "{f:?}");
    }

    #[test]
    fn missing_slack_flagged() {
        let mut net = two_bus();
        net.buses[0].kind = BusKind::Pv;
        let f = GridLint::default().audit(&net);
        assert!(codes(&f).contains(&"GM-SLACK-NONE"), "{f:?}");
    }

    #[test]
    fn inverted_limits_flagged() {
        let mut net = two_bus();
        net.gens[0].p_min_mw = 300.0;
        net.buses[1].vmin_pu = 1.2;
        let f = GridLint::default().audit(&net);
        let c = codes(&f);
        assert!(c.contains(&"GM-GEN-LIMITS"), "{f:?}");
        assert!(c.contains(&"GM-VOLT-LIMITS"), "{f:?}");
        // p_min 300 also exceeds the 50 MW load: must-run infeasibility.
        assert!(c.contains(&"GM-MUSTRUN"), "{f:?}");
    }

    #[test]
    fn zero_impedance_branch_flagged() {
        let mut net = two_bus();
        net.branches[0].x_pu = 0.0;
        let f = GridLint::default().audit(&net);
        assert!(codes(&f).contains(&"GM-DEGENERATE-X"), "{f:?}");
    }

    #[test]
    fn negative_line_impedance_flagged() {
        let mut net = two_bus();
        net.branches[0].x_pu = -0.1;
        let f = GridLint::default().audit(&net);
        assert!(codes(&f).contains(&"GM-NEG-IMPEDANCE"), "{f:?}");
    }

    #[test]
    fn kv_mismatch_on_line_is_warning() {
        let mut net = two_bus();
        net.buses[1].base_kv = 69.0;
        let f = GridLint::default().audit(&net);
        let hit = f.iter().find(|x| x.code == "GM-KV-MISMATCH").unwrap();
        assert_eq!(hit.severity, Severity::Warning);
    }

    #[test]
    fn capacity_shortfall_flagged() {
        let mut net = two_bus();
        net.gens[0].p_max_mw = 40.0;
        let f = GridLint::default().audit(&net);
        let hit = f.iter().find(|x| x.code == "GM-CAPACITY").unwrap();
        assert_eq!(hit.severity, Severity::Error);
        // Barely-enough capacity downgrades to a warning.
        net.gens[0].p_max_mw = 50.5;
        let f = GridLint::default().audit(&net);
        let hit = f.iter().find(|x| x.code == "GM-CAPACITY").unwrap();
        assert_eq!(hit.severity, Severity::Warning);
    }

    #[test]
    fn scheduled_voltage_outside_limits_is_warning() {
        let mut net = two_bus();
        net.buses[1].vm_pu = 1.2;
        let f = GridLint::default().audit(&net);
        assert!(codes(&f).contains(&"GM-VM-RANGE"), "{f:?}");
    }

    #[test]
    fn base_mva_must_be_positive() {
        let mut net = two_bus();
        net.base_mva = 0.0;
        let f = GridLint::default().audit(&net);
        assert!(codes(&f).contains(&"GM-BASE-MVA"), "{f:?}");
    }

    #[test]
    fn errors_sort_before_warnings() {
        let mut net = two_bus();
        net.buses[1].vm_pu = 1.2; // warning
        net.branches[0].x_pu = 0.0; // error
        let f = GridLint::default().audit(&net);
        assert_eq!(f[0].severity, Severity::Error);
        assert_eq!(f.last().unwrap().severity, Severity::Warning);
    }

    #[test]
    fn check_model_matches_legacy_validate_shape() {
        let mut net = two_bus();
        net.loads[0].bus = 7;
        let errs = GridLint::default().check_model(&net).unwrap_err();
        assert!(matches!(errs[0], ModelError::DanglingReference { .. }));
    }

    #[test]
    fn every_paper_case_is_audit_clean() {
        for id in crate::CaseId::ALL {
            let net = crate::cases::load(id);
            let findings = GridLint::default().audit(&net);
            let errors: Vec<_> = findings
                .iter()
                .filter(|f| f.severity == Severity::Error)
                .collect();
            assert!(errors.is_empty(), "{id:?}: {errors:?}");
        }
    }
}
