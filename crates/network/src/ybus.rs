//! Bus admittance matrix assembly.
//!
//! Standard pi-model with off-nominal tap `t` on the from side and phase
//! shift `θ` (so the complex tap is `a = t·e^{jθ}`):
//!
//! ```text
//! Y_ff = (y_s + j·b/2) / |a|²      Y_ft = -y_s / conj(a)
//! Y_tf = -y_s / a                  Y_tt =  y_s + j·b/2
//! ```
//!
//! with `y_s = 1/(r + jx)`. Bus shunts add `(g + jb)/S_base` on the
//! diagonal. Matches the MATPOWER/PandaPower convention, so branch-flow
//! equations downstream are textbook-compatible.

use crate::model::Network;
use gm_numeric::Complex;
use gm_sparse::{CsMat, Triplets};

/// Per-branch admittance blocks, retained for branch-flow computations.
#[derive(Clone, Copy, Debug)]
pub struct BranchAdmittance {
    /// From-from block.
    pub yff: Complex,
    /// From-to block.
    pub yft: Complex,
    /// To-from block.
    pub ytf: Complex,
    /// To-to block.
    pub ytt: Complex,
}

/// The assembled admittance structure for a network.
#[derive(Clone, Debug)]
pub struct YBus {
    /// Sparse complex bus admittance matrix (n × n).
    pub matrix: CsMat<Complex>,
    /// Admittance blocks for every branch (out-of-service branches get
    /// all-zero blocks, keeping indices aligned with `net.branches`).
    pub branch: Vec<BranchAdmittance>,
}

impl YBus {
    /// Assembles the admittance matrix for the in-service network.
    pub fn assemble(net: &Network) -> YBus {
        let n = net.n_bus();
        let mut t = Triplets::with_capacity(n, n, 4 * net.branches.len() + n);
        let mut blocks = Vec::with_capacity(net.branches.len());

        for br in &net.branches {
            if !br.in_service {
                blocks.push(BranchAdmittance {
                    yff: Complex::ZERO,
                    yft: Complex::ZERO,
                    ytf: Complex::ZERO,
                    ytt: Complex::ZERO,
                });
                continue;
            }
            let ys = Complex::new(br.r_pu, br.x_pu).inv();
            let bc = Complex::new(0.0, br.b_pu / 2.0);
            let a = Complex::from_polar(br.tap.max(1e-6), br.shift_deg.to_radians());
            let a2 = a.norm_sqr();
            let yff = (ys + bc) / a2;
            let yft = -ys / a.conj();
            let ytf = -ys / a;
            let ytt = ys + bc;
            t.push(br.from_bus, br.from_bus, yff);
            t.push(br.from_bus, br.to_bus, yft);
            t.push(br.to_bus, br.from_bus, ytf);
            t.push(br.to_bus, br.to_bus, ytt);
            blocks.push(BranchAdmittance { yff, yft, ytf, ytt });
        }

        for sh in net.shunts.iter().filter(|s| s.in_service) {
            // Shunt admittance in p.u.: consumption convention for g,
            // injection convention for b => y = (g - j·(-b)) ... net:
            // S = V² · conj(y); with P = g_mw, Q = -b_mvar (injection
            // positive) the admittance is (g + j·(-b))/base conjugated:
            t.push(
                sh.bus,
                sh.bus,
                Complex::new(sh.g_mw / net.base_mva, sh.b_mvar / net.base_mva),
            );
        }

        YBus {
            matrix: t.to_csr(),
            branch: blocks,
        }
    }

    /// Nodal complex current injections `I = Y·V`.
    pub fn currents(&self, v: &[Complex]) -> Vec<Complex> {
        self.matrix.mul_vec(v)
    }

    /// Nodal complex power injections `S = V ∘ conj(Y·V)` in p.u.
    pub fn injections(&self, v: &[Complex]) -> Vec<Complex> {
        self.currents(v)
            .iter()
            .zip(v)
            .map(|(i, vk)| *vk * i.conj())
            .collect()
    }

    /// Complex power flow into branch `idx` measured at the from side
    /// (p.u.).
    pub fn flow_from(&self, idx: usize, v: &[Complex], net: &Network) -> Complex {
        let br = &net.branches[idx];
        let blk = &self.branch[idx];
        let vf = v[br.from_bus];
        let vt = v[br.to_bus];
        let i = blk.yff * vf + blk.yft * vt;
        vf * i.conj()
    }

    /// Complex power flow into branch `idx` measured at the to side (p.u.).
    pub fn flow_to(&self, idx: usize, v: &[Complex], net: &Network) -> Complex {
        let br = &net.branches[idx];
        let blk = &self.branch[idx];
        let vf = v[br.from_bus];
        let vt = v[br.to_bus];
        let i = blk.ytf * vf + blk.ytt * vt;
        vt * i.conj()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Branch, Bus, BusKind, Network, Shunt};

    fn two_bus(r: f64, x: f64, b: f64) -> Network {
        let mut net = Network::new("t");
        let mut s = Bus::pq(1, 138.0);
        s.kind = BusKind::Slack;
        net.buses.push(s);
        net.buses.push(Bus::pq(2, 138.0));
        net.branches.push(Branch::line(0, 1, r, x, b, 100.0));
        net
    }

    #[test]
    fn symmetric_line_blocks() {
        let net = two_bus(0.01, 0.1, 0.04);
        let y = YBus::assemble(&net);
        let blk = &y.branch[0];
        assert_eq!(blk.yff, blk.ytt);
        assert_eq!(blk.yft, blk.ytf);
        // Off-diagonal equals -ys.
        let ys = Complex::new(0.01, 0.1).inv();
        assert!((blk.yft + ys).abs() < 1e-12);
        // Diagonal = ys + j b/2.
        assert!((blk.yff - ys - Complex::new(0.0, 0.02)).abs() < 1e-12);
    }

    #[test]
    fn matrix_row_sums_equal_charging_only() {
        // Without shunts/charging, Y rows sum to zero.
        let net = two_bus(0.02, 0.2, 0.0);
        let y = YBus::assemble(&net);
        for i in 0..2 {
            let (cols, vals) = y.matrix.row(i);
            assert_eq!(cols.len(), 2);
            let sum: Complex = vals.iter().copied().sum();
            assert!(sum.abs() < 1e-12);
        }
    }

    #[test]
    fn tap_breaks_symmetry() {
        let mut net = two_bus(0.0, 0.1, 0.0);
        net.branches[0].kind = crate::model::BranchKind::Transformer;
        net.branches[0].tap = 0.95;
        let y = YBus::assemble(&net);
        let blk = &y.branch[0];
        assert!((blk.yff.abs() - blk.ytt.abs()).abs() > 1e-6);
        // Without phase shift the two off-diagonals stay equal.
        assert!((blk.yft - blk.ytf).abs() < 1e-12);
    }

    #[test]
    fn phase_shift_offdiagonal_identity() {
        // For a lossless branch (ys purely imaginary) with complex tap a:
        // yft = -ys·e^{jθ}, ytf = -ys·e^{-jθ}, hence yft = -conj(ytf).
        let mut net = two_bus(0.0, 0.1, 0.0);
        net.branches[0].shift_deg = 30.0;
        let y = YBus::assemble(&net);
        let blk = &y.branch[0];
        assert!((blk.yft + blk.ytf.conj()).abs() < 1e-12);
        // And the magnitudes stay equal to 1/x.
        assert!((blk.yft.abs() - 10.0).abs() < 1e-9);
        assert!((blk.ytf.abs() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn out_of_service_branch_excluded() {
        let mut net = two_bus(0.01, 0.1, 0.0);
        net.branches[0].in_service = false;
        let y = YBus::assemble(&net);
        assert_eq!(y.matrix.nnz(), 0);
        assert_eq!(y.branch[0].yff, Complex::ZERO);
    }

    #[test]
    fn shunt_adds_diagonal() {
        let mut net = two_bus(0.01, 0.1, 0.0);
        net.shunts.push(Shunt {
            bus: 1,
            g_mw: 0.0,
            b_mvar: 19.0,
            in_service: true,
        });
        let y = YBus::assemble(&net);
        let with = y.matrix.get(1, 1);
        net.shunts[0].in_service = false;
        let y2 = YBus::assemble(&net);
        let without = y2.matrix.get(1, 1);
        let delta = with - without;
        assert!((delta - Complex::new(0.0, 0.19)).abs() < 1e-12);
    }

    #[test]
    fn flat_voltage_no_flow_without_shunt() {
        let net = two_bus(0.01, 0.1, 0.0);
        let y = YBus::assemble(&net);
        let v = vec![Complex::ONE, Complex::ONE];
        let s = y.injections(&v);
        assert!(s[0].abs() < 1e-12);
        assert!(s[1].abs() < 1e-12);
        assert!(y.flow_from(0, &v, &net).abs() < 1e-12);
    }

    #[test]
    fn angle_difference_drives_active_flow() {
        let net = two_bus(0.0, 0.1, 0.0);
        let y = YBus::assemble(&net);
        let v = vec![Complex::from_polar(1.0, 0.1), Complex::ONE];
        let sf = y.flow_from(0, &v, &net);
        let st = y.flow_to(0, &v, &net);
        // Lossless line: P_from = -P_to ≈ sin(0.1)/0.1 p.u.
        assert!(sf.re > 0.9);
        assert!((sf.re + st.re).abs() < 1e-12);
        // Power balance: injections match branch flows.
        let inj = y.injections(&v);
        assert!((inj[0] - sf).abs() < 1e-12);
        assert!((inj[1] - st).abs() < 1e-12);
    }

    #[test]
    fn losses_positive_with_resistance() {
        let net = two_bus(0.05, 0.1, 0.0);
        let y = YBus::assemble(&net);
        let v = vec![
            Complex::from_polar(1.02, 0.15),
            Complex::from_polar(0.98, 0.0),
        ];
        let loss = y.flow_from(0, &v, &net).re + y.flow_to(0, &v, &net).re;
        assert!(loss > 0.0, "I²R loss must be positive, got {loss}");
    }
}
