//! Incremental network modifications.
//!
//! GridMind's agents never mutate the base case directly: every change —
//! "increase the load at bus 10 to 50 MW", "take line 171 out" — is recorded
//! as a [`Modification`], applied to produce a derived network, and appended
//! to a chronological diff log (paper §3.2.1 "Memory" and §3.4). A diff log
//! can be replayed on a fresh copy of the base case to reconstruct state,
//! and hashed to key contingency caches.

use crate::model::Network;
use serde::{Deserialize, Serialize};

/// A single reversible network edit.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Modification {
    /// Set the active/reactive demand of every load at the bus with the
    /// given external id. `q_mvar = None` keeps the existing power factor.
    SetBusLoad {
        /// External bus id.
        bus_id: u32,
        /// New total active demand at the bus (MW).
        p_mw: f64,
        /// New reactive demand; `None` scales Q with P.
        q_mvar: Option<f64>,
    },
    /// Scale every in-service load by a factor.
    ScaleAllLoads {
        /// Multiplier applied to both P and Q.
        factor: f64,
    },
    /// Take a branch out of service.
    OutageBranch {
        /// Branch index into `Network::branches`.
        index: usize,
    },
    /// Return a branch to service.
    RestoreBranch {
        /// Branch index into `Network::branches`.
        index: usize,
    },
    /// Take a generator out of service.
    OutageGen {
        /// Generator index into `Network::gens`.
        index: usize,
    },
    /// Change a generator's active power limits.
    SetGenLimits {
        /// Generator index.
        index: usize,
        /// New minimum (MW).
        p_min_mw: f64,
        /// New maximum (MW).
        p_max_mw: f64,
    },
}

/// Errors from applying a modification.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum DiffError {
    /// The referenced bus id does not exist.
    UnknownBus {
        /// External bus id.
        bus_id: u32,
    },
    /// The bus exists but carries no load to modify.
    NoLoadAtBus {
        /// External bus id.
        bus_id: u32,
    },
    /// Branch or generator index out of range.
    IndexOutOfRange {
        /// Offending index.
        index: usize,
        /// Element kind ("branch" / "gen").
        kind: String,
    },
    /// A numeric argument was not finite or not positive where required.
    BadArgument {
        /// Explanation.
        reason: String,
    },
}

impl std::fmt::Display for DiffError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DiffError::UnknownBus { bus_id } => write!(f, "bus {bus_id} does not exist"),
            DiffError::NoLoadAtBus { bus_id } => write!(f, "bus {bus_id} has no load"),
            DiffError::IndexOutOfRange { index, kind } => {
                write!(f, "{kind} index {index} out of range")
            }
            DiffError::BadArgument { reason } => write!(f, "bad argument: {reason}"),
        }
    }
}

impl std::error::Error for DiffError {}

impl Modification {
    /// Applies the edit to `net` in place.
    pub fn apply(&self, net: &mut Network) -> Result<(), DiffError> {
        match *self {
            Modification::SetBusLoad {
                bus_id,
                p_mw,
                q_mvar,
            } => {
                if !p_mw.is_finite() {
                    return Err(DiffError::BadArgument {
                        reason: format!("p_mw = {p_mw}"),
                    });
                }
                let bus = net
                    .bus_index(bus_id)
                    .ok_or(DiffError::UnknownBus { bus_id })?;
                let loads: Vec<usize> = net
                    .loads
                    .iter()
                    .enumerate()
                    .filter(|(_, l)| l.bus == bus)
                    .map(|(i, _)| i)
                    .collect();
                if loads.is_empty() {
                    // Creating a load where none existed is a legitimate
                    // what-if; attach a fresh one.
                    net.loads.push(crate::model::Load {
                        bus,
                        p_mw,
                        q_mvar: q_mvar.unwrap_or(p_mw * 0.2),
                        in_service: true,
                    });
                    return Ok(());
                }
                let old_p: f64 = loads.iter().map(|&i| net.loads[i].p_mw).sum();
                let old_q: f64 = loads.iter().map(|&i| net.loads[i].q_mvar).sum();
                // Put the whole new demand on the first load at the bus and
                // zero the rest: simplest auditable semantics.
                for (k, &i) in loads.iter().enumerate() {
                    if k == 0 {
                        net.loads[i].p_mw = p_mw;
                        net.loads[i].q_mvar = q_mvar.unwrap_or_else(|| {
                            if old_p.abs() > 1e-9 {
                                old_q * p_mw / old_p
                            } else {
                                p_mw * 0.2
                            }
                        });
                    } else {
                        net.loads[i].p_mw = 0.0;
                        net.loads[i].q_mvar = 0.0;
                    }
                }
                Ok(())
            }
            Modification::ScaleAllLoads { factor } => {
                if !(factor.is_finite() && factor >= 0.0) {
                    return Err(DiffError::BadArgument {
                        reason: format!("scale factor = {factor}"),
                    });
                }
                for l in &mut net.loads {
                    l.p_mw *= factor;
                    l.q_mvar *= factor;
                }
                Ok(())
            }
            Modification::OutageBranch { index } => {
                let br = net
                    .branches
                    .get_mut(index)
                    .ok_or(DiffError::IndexOutOfRange {
                        index,
                        kind: "branch".to_string(),
                    })?;
                br.in_service = false;
                Ok(())
            }
            Modification::RestoreBranch { index } => {
                let br = net
                    .branches
                    .get_mut(index)
                    .ok_or(DiffError::IndexOutOfRange {
                        index,
                        kind: "branch".to_string(),
                    })?;
                br.in_service = true;
                Ok(())
            }
            Modification::OutageGen { index } => {
                let g = net.gens.get_mut(index).ok_or(DiffError::IndexOutOfRange {
                    index,
                    kind: "gen".to_string(),
                })?;
                g.in_service = false;
                Ok(())
            }
            Modification::SetGenLimits {
                index,
                p_min_mw,
                p_max_mw,
            } => {
                if p_min_mw > p_max_mw {
                    return Err(DiffError::BadArgument {
                        reason: format!("p_min {p_min_mw} > p_max {p_max_mw}"),
                    });
                }
                let g = net.gens.get_mut(index).ok_or(DiffError::IndexOutOfRange {
                    index,
                    kind: "gen".to_string(),
                })?;
                g.p_min_mw = p_min_mw;
                g.p_max_mw = p_max_mw;
                Ok(())
            }
        }
    }

    /// Short human-readable description for audit narration.
    pub fn describe(&self) -> String {
        match self {
            Modification::SetBusLoad { bus_id, p_mw, .. } => {
                format!("set load at bus {bus_id} to {p_mw} MW")
            }
            Modification::ScaleAllLoads { factor } => {
                format!("scale all loads by {factor}")
            }
            Modification::OutageBranch { index } => format!("outage branch {index}"),
            Modification::RestoreBranch { index } => format!("restore branch {index}"),
            Modification::OutageGen { index } => format!("outage generator {index}"),
            Modification::SetGenLimits {
                index,
                p_min_mw,
                p_max_mw,
            } => format!("set gen {index} limits to [{p_min_mw}, {p_max_mw}] MW"),
        }
    }
}

/// Chronological log of applied modifications (the paper's "normalized
/// change log", §3.4).
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct DiffLog {
    entries: Vec<Modification>,
}

impl DiffLog {
    /// Empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Applies and records a modification.
    pub fn apply(&mut self, net: &mut Network, m: Modification) -> Result<(), DiffError> {
        m.apply(net)?;
        self.entries.push(m);
        Ok(())
    }

    /// Recorded entries in order.
    pub fn entries(&self) -> &[Modification] {
        &self.entries
    }

    /// Number of recorded modifications.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Replays the full log onto a fresh copy of `base` (state
    /// reconstruction, §3.4).
    pub fn replay(&self, base: &Network) -> Result<Network, DiffError> {
        let mut net = base.clone();
        for m in &self.entries {
            m.apply(&mut net)?;
        }
        Ok(net)
    }

    /// Deterministic hash of the log, used in contingency cache keys
    /// (`case + outage + diff hash`, §3.4). FNV-1a over the serialized
    /// entries.
    pub fn hash(&self) -> u64 {
        let bytes = serde_json::to_vec(&self.entries).unwrap_or_default();
        let mut h: u64 = 0xcbf29ce484222325;
        for b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Branch, Bus, BusKind, GenCost, Generator, Load};

    fn base() -> Network {
        let mut net = Network::new("t");
        let mut s = Bus::pq(1, 138.0);
        s.kind = BusKind::Slack;
        net.buses.push(s);
        net.buses.push(Bus::pq(2, 138.0));
        net.buses.push(Bus::pq(10, 138.0));
        net.branches.push(Branch::line(0, 1, 0.01, 0.1, 0.0, 100.0));
        net.branches.push(Branch::line(1, 2, 0.01, 0.1, 0.0, 100.0));
        net.loads.push(Load {
            bus: 1,
            p_mw: 40.0,
            q_mvar: 10.0,
            in_service: true,
        });
        net.gens.push(Generator {
            bus: 0,
            p_mw: 40.0,
            q_mvar: 0.0,
            vm_setpoint_pu: 1.0,
            p_min_mw: 0.0,
            p_max_mw: 100.0,
            q_min_mvar: -50.0,
            q_max_mvar: 50.0,
            in_service: true,
            cost: GenCost {
                c2: 0.0,
                c1: 10.0,
                c0: 0.0,
            },
        });
        net
    }

    #[test]
    fn set_bus_load_preserves_power_factor() {
        let mut net = base();
        Modification::SetBusLoad {
            bus_id: 2,
            p_mw: 80.0,
            q_mvar: None,
        }
        .apply(&mut net)
        .unwrap();
        assert_eq!(net.loads[0].p_mw, 80.0);
        assert!((net.loads[0].q_mvar - 20.0).abs() < 1e-12); // pf preserved
    }

    #[test]
    fn set_bus_load_creates_load_when_absent() {
        let mut net = base();
        Modification::SetBusLoad {
            bus_id: 10,
            p_mw: 50.0,
            q_mvar: Some(12.0),
        }
        .apply(&mut net)
        .unwrap();
        assert_eq!(net.loads.len(), 2);
        assert_eq!(net.loads[1].p_mw, 50.0);
        assert_eq!(net.loads[1].q_mvar, 12.0);
    }

    #[test]
    fn unknown_bus_rejected() {
        let mut net = base();
        let err = Modification::SetBusLoad {
            bus_id: 99,
            p_mw: 1.0,
            q_mvar: None,
        }
        .apply(&mut net)
        .unwrap_err();
        assert_eq!(err, DiffError::UnknownBus { bus_id: 99 });
    }

    #[test]
    fn outage_and_restore_round_trip() {
        let mut net = base();
        Modification::OutageBranch { index: 1 }
            .apply(&mut net)
            .unwrap();
        assert!(!net.branches[1].in_service);
        Modification::RestoreBranch { index: 1 }
            .apply(&mut net)
            .unwrap();
        assert!(net.branches[1].in_service);
    }

    #[test]
    fn out_of_range_index() {
        let mut net = base();
        assert!(matches!(
            Modification::OutageBranch { index: 9 }.apply(&mut net),
            Err(DiffError::IndexOutOfRange { .. })
        ));
    }

    #[test]
    fn scale_loads() {
        let mut net = base();
        Modification::ScaleAllLoads { factor: 1.5 }
            .apply(&mut net)
            .unwrap();
        assert_eq!(net.loads[0].p_mw, 60.0);
        assert!(Modification::ScaleAllLoads { factor: -1.0 }
            .apply(&mut net)
            .is_err());
    }

    #[test]
    fn gen_limits_validated() {
        let mut net = base();
        assert!(Modification::SetGenLimits {
            index: 0,
            p_min_mw: 50.0,
            p_max_mw: 10.0
        }
        .apply(&mut net)
        .is_err());
        Modification::SetGenLimits {
            index: 0,
            p_min_mw: 5.0,
            p_max_mw: 80.0,
        }
        .apply(&mut net)
        .unwrap();
        assert_eq!(net.gens[0].p_max_mw, 80.0);
    }

    #[test]
    fn log_replay_reconstructs_state() {
        let b = base();
        let mut live = b.clone();
        let mut log = DiffLog::new();
        log.apply(
            &mut live,
            Modification::SetBusLoad {
                bus_id: 2,
                p_mw: 55.0,
                q_mvar: None,
            },
        )
        .unwrap();
        log.apply(&mut live, Modification::OutageBranch { index: 0 })
            .unwrap();
        let replayed = log.replay(&b).unwrap();
        assert_eq!(replayed.loads[0].p_mw, live.loads[0].p_mw);
        assert_eq!(replayed.branches[0].in_service, live.branches[0].in_service);
        assert_eq!(log.len(), 2);
    }

    #[test]
    fn failed_apply_not_recorded() {
        let mut net = base();
        let mut log = DiffLog::new();
        let r = log.apply(
            &mut net,
            Modification::SetBusLoad {
                bus_id: 77,
                p_mw: 1.0,
                q_mvar: None,
            },
        );
        assert!(r.is_err());
        assert!(log.is_empty());
    }

    #[test]
    fn hash_changes_with_content() {
        let b = base();
        let mut l1 = DiffLog::new();
        let mut l2 = DiffLog::new();
        assert_eq!(l1.hash(), l2.hash());
        let mut n1 = b.clone();
        l1.apply(&mut n1, Modification::OutageBranch { index: 0 })
            .unwrap();
        assert_ne!(l1.hash(), l2.hash());
        let mut n2 = b.clone();
        l2.apply(&mut n2, Modification::OutageBranch { index: 0 })
            .unwrap();
        assert_eq!(l1.hash(), l2.hash());
    }

    #[test]
    fn describe_is_human_readable() {
        let d = Modification::SetBusLoad {
            bus_id: 10,
            p_mw: 50.0,
            q_mvar: None,
        }
        .describe();
        assert!(d.contains("bus 10"));
        assert!(d.contains("50"));
    }
}
