//! Plain-text case format (parser and serializer).
//!
//! A line-oriented, MATPOWER-flavoured format used both for the embedded
//! IEEE case data and for session persistence of modified networks. The
//! grammar, one record per line, `#` comments:
//!
//! ```text
//! case    <name with spaces>
//! basemva <mva>
//! bus     <id> <slack|pv|pq> <vm_pu> <va_deg> <base_kv> <vmin> <vmax> <area>
//! load    <bus_id> <p_mw> <q_mvar>
//! gen     <bus_id> <p_mw> <q_mvar> <vm_set> <p_min> <p_max> <q_min> <q_max> <c2> <c1> <c0>
//! branch  <from_id> <to_id> <r_pu> <x_pu> <b_pu> <rating_mva> <tap> <shift_deg> <line|trafo>
//! shunt   <bus_id> <g_mw> <b_mvar>
//! ```
//!
//! Buses must be declared before elements that reference them. Round-trip
//! (`serialize` → `parse`) is tested to preserve every field.

use crate::model::{Branch, BranchKind, Bus, BusKind, GenCost, Generator, Load, Network, Shunt};

/// What specifically went wrong on a case file line.
#[derive(Debug, Clone, PartialEq)]
pub enum CaseErrorKind {
    /// The record keyword is not part of the grammar.
    UnknownRecord {
        /// The offending keyword.
        keyword: String,
    },
    /// A record has the wrong number of fields.
    BadArity {
        /// Record keyword.
        record: &'static str,
        /// Fields the grammar requires.
        expected: usize,
        /// Fields present on the line.
        got: usize,
    },
    /// A field failed numeric/enumeration parsing.
    BadField {
        /// The offending token.
        token: String,
    },
    /// An element references a bus id that has not been declared.
    UndeclaredBus {
        /// The referenced bus id.
        bus: u32,
    },
}

/// Parse failure with line and field context.
#[derive(Debug, Clone, PartialEq)]
pub struct CaseError {
    /// 1-based line number.
    pub line: usize,
    /// The field being parsed when the error occurred (e.g. `"vm"`,
    /// `"base MVA"`), when one is identifiable.
    pub field: Option<&'static str>,
    /// Structured failure cause.
    pub kind: CaseErrorKind,
}

/// Former name of [`CaseError`], kept for downstream code.
pub type ParseError = CaseError;

impl CaseError {
    /// Human-readable description of the cause (without the line prefix).
    pub fn message(&self) -> String {
        match &self.kind {
            CaseErrorKind::UnknownRecord { keyword } => {
                format!("unknown record type {keyword:?}")
            }
            CaseErrorKind::BadArity {
                record,
                expected,
                got,
            } => format!("{record} requires {expected} fields, got {got}"),
            CaseErrorKind::BadField { token } => match self.field {
                Some(f) => format!("invalid {f}: {token:?}"),
                None => format!("invalid field: {token:?}"),
            },
            CaseErrorKind::UndeclaredBus { bus } => match self.field {
                Some(f) => format!("{f} references undeclared bus {bus}"),
                None => format!("reference to undeclared bus {bus}"),
            },
        }
    }
}

impl std::fmt::Display for CaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "case parse error at line {}: {}",
            self.line,
            self.message()
        )
    }
}

impl std::error::Error for CaseError {}

fn err(line: usize, field: Option<&'static str>, kind: CaseErrorKind) -> CaseError {
    CaseError { line, field, kind }
}

fn bad_field(line: usize, field: &'static str, tok: &str) -> CaseError {
    err(
        line,
        Some(field),
        CaseErrorKind::BadField {
            token: tok.to_string(),
        },
    )
}

fn bad_arity(line: usize, record: &'static str, expected: usize, got: usize) -> CaseError {
    err(
        line,
        None,
        CaseErrorKind::BadArity {
            record,
            expected,
            got,
        },
    )
}

fn undeclared(line: usize, field: &'static str, bus: u32) -> CaseError {
    err(line, Some(field), CaseErrorKind::UndeclaredBus { bus })
}

fn parse_f64(tok: &str, line: usize, what: &'static str) -> Result<f64, CaseError> {
    tok.parse::<f64>().map_err(|_| bad_field(line, what, tok))
}

fn parse_u32(tok: &str, line: usize, what: &'static str) -> Result<u32, CaseError> {
    tok.parse::<u32>().map_err(|_| bad_field(line, what, tok))
}

/// Parses a network from the text format.
pub fn parse(text: &str) -> Result<Network, CaseError> {
    let mut net = Network::new("unnamed");
    for (ln0, raw) in text.lines().enumerate() {
        let ln = ln0 + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut toks = line.split_whitespace();
        let Some(kw) = toks.next() else { continue };
        let rest: Vec<&str> = toks.collect();
        match kw {
            "case" => {
                if rest.is_empty() {
                    return Err(bad_arity(ln, "case", 1, 0));
                }
                net.name = rest.join(" ");
            }
            "basemva" => {
                let v = rest.first().ok_or_else(|| bad_arity(ln, "basemva", 1, 0))?;
                net.base_mva = parse_f64(v, ln, "base MVA")?;
            }
            "bus" => {
                if rest.len() != 8 {
                    return Err(bad_arity(ln, "bus", 8, rest.len()));
                }
                let id = parse_u32(rest[0], ln, "bus id")?;
                let kind = match rest[1] {
                    "slack" => BusKind::Slack,
                    "pv" => BusKind::Pv,
                    "pq" => BusKind::Pq,
                    other => return Err(bad_field(ln, "bus kind", other)),
                };
                net.buses.push(Bus {
                    id,
                    name: format!("bus{id}"),
                    kind,
                    vm_pu: parse_f64(rest[2], ln, "vm")?,
                    va_deg: parse_f64(rest[3], ln, "va")?,
                    base_kv: parse_f64(rest[4], ln, "base kV")?,
                    vmin_pu: parse_f64(rest[5], ln, "vmin")?,
                    vmax_pu: parse_f64(rest[6], ln, "vmax")?,
                    area: parse_u32(rest[7], ln, "area")?,
                });
            }
            "load" => {
                if rest.len() != 3 {
                    return Err(bad_arity(ln, "load", 3, rest.len()));
                }
                let id = parse_u32(rest[0], ln, "bus id")?;
                let bus = net
                    .bus_index(id)
                    .ok_or_else(|| undeclared(ln, "load", id))?;
                net.loads.push(Load {
                    bus,
                    p_mw: parse_f64(rest[1], ln, "p_mw")?,
                    q_mvar: parse_f64(rest[2], ln, "q_mvar")?,
                    in_service: true,
                });
            }
            "gen" => {
                if rest.len() != 11 {
                    return Err(bad_arity(ln, "gen", 11, rest.len()));
                }
                let id = parse_u32(rest[0], ln, "bus id")?;
                let bus = net.bus_index(id).ok_or_else(|| undeclared(ln, "gen", id))?;
                net.gens.push(Generator {
                    bus,
                    p_mw: parse_f64(rest[1], ln, "p_mw")?,
                    q_mvar: parse_f64(rest[2], ln, "q_mvar")?,
                    vm_setpoint_pu: parse_f64(rest[3], ln, "vm setpoint")?,
                    p_min_mw: parse_f64(rest[4], ln, "p_min")?,
                    p_max_mw: parse_f64(rest[5], ln, "p_max")?,
                    q_min_mvar: parse_f64(rest[6], ln, "q_min")?,
                    q_max_mvar: parse_f64(rest[7], ln, "q_max")?,
                    in_service: true,
                    cost: GenCost {
                        c2: parse_f64(rest[8], ln, "c2")?,
                        c1: parse_f64(rest[9], ln, "c1")?,
                        c0: parse_f64(rest[10], ln, "c0")?,
                    },
                });
            }
            "branch" => {
                if rest.len() != 9 {
                    return Err(bad_arity(ln, "branch", 9, rest.len()));
                }
                let fid = parse_u32(rest[0], ln, "from bus")?;
                let tid = parse_u32(rest[1], ln, "to bus")?;
                let from_bus = net
                    .bus_index(fid)
                    .ok_or_else(|| undeclared(ln, "branch from", fid))?;
                let to_bus = net
                    .bus_index(tid)
                    .ok_or_else(|| undeclared(ln, "branch to", tid))?;
                let kind = match rest[8] {
                    "line" => BranchKind::Line,
                    "trafo" => BranchKind::Transformer,
                    other => return Err(bad_field(ln, "branch kind", other)),
                };
                net.branches.push(Branch {
                    from_bus,
                    to_bus,
                    r_pu: parse_f64(rest[2], ln, "r")?,
                    x_pu: parse_f64(rest[3], ln, "x")?,
                    b_pu: parse_f64(rest[4], ln, "b")?,
                    rating_mva: parse_f64(rest[5], ln, "rating")?,
                    tap: parse_f64(rest[6], ln, "tap")?,
                    shift_deg: parse_f64(rest[7], ln, "shift")?,
                    in_service: true,
                    kind,
                });
            }
            "shunt" => {
                if rest.len() != 3 {
                    return Err(bad_arity(ln, "shunt", 3, rest.len()));
                }
                let id = parse_u32(rest[0], ln, "bus id")?;
                let bus = net
                    .bus_index(id)
                    .ok_or_else(|| undeclared(ln, "shunt", id))?;
                net.shunts.push(Shunt {
                    bus,
                    g_mw: parse_f64(rest[1], ln, "g_mw")?,
                    b_mvar: parse_f64(rest[2], ln, "b_mvar")?,
                    in_service: true,
                });
            }
            other => {
                return Err(err(
                    ln,
                    None,
                    CaseErrorKind::UnknownRecord {
                        keyword: other.to_string(),
                    },
                ))
            }
        }
    }
    Ok(net)
}

/// Serializes a network to the text format. Out-of-service elements are
/// *not* emitted (the format captures a case, not a session).
pub fn serialize(net: &Network) -> String {
    use std::fmt::Write;
    let mut s = String::with_capacity(64 * (net.n_bus() + net.branches.len()));
    // `fmt::Write` to a String is infallible.
    let _ = writeln!(s, "case {}", net.name);
    let _ = writeln!(s, "basemva {}", net.base_mva);
    for b in &net.buses {
        let kind = match b.kind {
            BusKind::Slack => "slack",
            BusKind::Pv => "pv",
            BusKind::Pq => "pq",
        };
        let _ = writeln!(
            s,
            "bus {} {} {} {} {} {} {} {}",
            b.id, kind, b.vm_pu, b.va_deg, b.base_kv, b.vmin_pu, b.vmax_pu, b.area
        );
    }
    for l in net.loads.iter().filter(|l| l.in_service) {
        let _ = writeln!(s, "load {} {} {}", net.buses[l.bus].id, l.p_mw, l.q_mvar);
    }
    for g in net.gens.iter().filter(|g| g.in_service) {
        let _ = writeln!(
            s,
            "gen {} {} {} {} {} {} {} {} {} {} {}",
            net.buses[g.bus].id,
            g.p_mw,
            g.q_mvar,
            g.vm_setpoint_pu,
            g.p_min_mw,
            g.p_max_mw,
            g.q_min_mvar,
            g.q_max_mvar,
            g.cost.c2,
            g.cost.c1,
            g.cost.c0
        );
    }
    for br in net.branches.iter().filter(|b| b.in_service) {
        let kind = match br.kind {
            BranchKind::Line => "line",
            BranchKind::Transformer => "trafo",
        };
        let _ = writeln!(
            s,
            "branch {} {} {} {} {} {} {} {} {}",
            net.buses[br.from_bus].id,
            net.buses[br.to_bus].id,
            br.r_pu,
            br.x_pu,
            br.b_pu,
            br.rating_mva,
            br.tap,
            br.shift_deg,
            kind
        );
    }
    for sh in net.shunts.iter().filter(|s| s.in_service) {
        let _ = writeln!(
            s,
            "shunt {} {} {}",
            net.buses[sh.bus].id, sh.g_mw, sh.b_mvar
        );
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "
# two-bus sample
case sample system
basemva 100
bus 1 slack 1.02 0 138 0.94 1.06 1
bus 2 pq 1.0 0 138 0.94 1.06 1
load 2 50 10
gen 1 50 0 1.02 0 200 -100 100 0.01 20 5
branch 1 2 0.01 0.1 0.02 100 1 0 line
shunt 2 0 19
";

    #[test]
    fn parses_sample() {
        let net = parse(SAMPLE).unwrap();
        assert_eq!(net.name, "sample system");
        assert_eq!(net.n_bus(), 2);
        assert_eq!(net.loads.len(), 1);
        assert_eq!(net.gens.len(), 1);
        assert_eq!(net.branches.len(), 1);
        assert_eq!(net.shunts.len(), 1);
        assert_eq!(net.buses[0].kind, BusKind::Slack);
        assert_eq!(net.gens[0].cost.c1, 20.0);
        assert!(net.validate().is_ok());
    }

    #[test]
    fn round_trip_preserves_fields() {
        let net = parse(SAMPLE).unwrap();
        let text = serialize(&net);
        let net2 = parse(&text).unwrap();
        assert_eq!(net.name, net2.name);
        assert_eq!(net.base_mva, net2.base_mva);
        assert_eq!(net.buses.len(), net2.buses.len());
        assert_eq!(net.buses[0].vm_pu, net2.buses[0].vm_pu);
        assert_eq!(net.branches[0].x_pu, net2.branches[0].x_pu);
        assert_eq!(net.branches[0].kind, net2.branches[0].kind);
        assert_eq!(net.gens[0].cost.c2, net2.gens[0].cost.c2);
        assert_eq!(net.shunts[0].b_mvar, net2.shunts[0].b_mvar);
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let net = parse("# only comments\n\n   \ncase x\nbasemva 50\n").unwrap();
        assert_eq!(net.base_mva, 50.0);
    }

    #[test]
    fn inline_comment_stripped() {
        let net = parse("case y\nbasemva 100 # the base\n").unwrap();
        assert_eq!(net.base_mva, 100.0);
    }

    #[test]
    fn error_reports_line_number() {
        let e = parse("case z\nbus 1 slack 1 0 138 0.9 1.1 1\nbogus 1 2 3\n").unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.message().contains("bogus"));
        assert!(matches!(e.kind, CaseErrorKind::UnknownRecord { .. }));
    }

    #[test]
    fn undeclared_bus_rejected() {
        let e = parse("case z\nload 5 1 1\n").unwrap_err();
        assert!(e.message().contains("undeclared bus 5"));
        assert_eq!(e.field, Some("load"));
        assert_eq!(e.kind, CaseErrorKind::UndeclaredBus { bus: 5 });
    }

    #[test]
    fn wrong_arity_rejected() {
        let e = parse("case z\nbus 1 slack 1 0\n").unwrap_err();
        assert!(e.message().contains("8 fields"));
        assert_eq!(
            e.kind,
            CaseErrorKind::BadArity {
                record: "bus",
                expected: 8,
                got: 4
            }
        );
    }

    #[test]
    fn bad_number_rejected() {
        let e = parse("case z\nbasemva lots\n").unwrap_err();
        assert!(e.message().contains("invalid base MVA"));
        assert_eq!(e.field, Some("base MVA"));
    }

    #[test]
    fn trafo_kind_parsed() {
        let text = "case t\nbasemva 100\nbus 1 slack 1 0 138 0.9 1.1 1\nbus 2 pq 1 0 69 0.9 1.1 1\nbranch 1 2 0.001 0.05 0 150 0.978 0 trafo\n";
        let net = parse(text).unwrap();
        assert_eq!(net.branches[0].kind, BranchKind::Transformer);
        assert_eq!(net.branches[0].tap, 0.978);
    }
}
