//! Graph utilities over the in-service branch topology.

use crate::model::Network;

/// Adjacency lists over in-service branches (undirected).
pub fn adjacency(net: &Network) -> Vec<Vec<usize>> {
    let mut adj = vec![Vec::new(); net.n_bus()];
    for br in net.branches.iter().filter(|b| b.in_service) {
        adj[br.from_bus].push(br.to_bus);
        adj[br.to_bus].push(br.from_bus);
    }
    adj
}

/// Number of connected components of the in-service network.
pub fn connected_components(net: &Network) -> usize {
    component_labels(net)
        .iter()
        .copied()
        .max()
        .map(|m| m + 1)
        .unwrap_or(0)
}

/// Per-bus component label (0-based), assigned by BFS in bus order.
pub fn component_labels(net: &Network) -> Vec<usize> {
    let n = net.n_bus();
    let adj = adjacency(net);
    let mut label = vec![usize::MAX; n];
    let mut next = 0usize;
    let mut queue = std::collections::VecDeque::new();
    for start in 0..n {
        if label[start] != usize::MAX {
            continue;
        }
        label[start] = next;
        queue.push_back(start);
        while let Some(u) = queue.pop_front() {
            for &v in &adj[u] {
                if label[v] == usize::MAX {
                    label[v] = next;
                    queue.push_back(v);
                }
            }
        }
        next += 1;
    }
    label
}

/// Returns `true` when taking branch `idx` out of service would split the
/// network (i.e. the branch is a bridge) or isolate a bus.
pub fn outage_islands(net: &Network, idx: usize) -> bool {
    let mut copy = net.clone();
    copy.branches[idx].in_service = false;
    connected_components(&copy) > connected_components(net)
}

/// Buses that would be disconnected from the slack if branch `idx` were
/// outaged. Empty when the outage is safe.
pub fn stranded_buses(net: &Network, idx: usize) -> Vec<usize> {
    let Some(slack) = net.slack() else {
        return Vec::new();
    };
    let mut copy = net.clone();
    copy.branches[idx].in_service = false;
    let labels = component_labels(&copy);
    let slack_label = labels[slack];
    labels
        .iter()
        .enumerate()
        .filter(|(_, &l)| l != slack_label)
        .map(|(i, _)| i)
        .collect()
}

/// Degree (number of incident in-service branches) per bus.
pub fn degrees(net: &Network) -> Vec<usize> {
    adjacency(net).iter().map(|a| a.len()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Branch, Bus, BusKind, Network};

    fn chain(n: usize) -> Network {
        let mut net = Network::new("chain");
        for i in 0..n {
            let mut b = Bus::pq(i as u32 + 1, 138.0);
            if i == 0 {
                b.kind = BusKind::Slack;
            }
            net.buses.push(b);
        }
        for i in 0..n.saturating_sub(1) {
            net.branches
                .push(Branch::line(i, i + 1, 0.01, 0.1, 0.0, 100.0));
        }
        net
    }

    #[test]
    fn chain_is_connected() {
        assert_eq!(connected_components(&chain(5)), 1);
    }

    #[test]
    fn out_of_service_branch_splits() {
        let mut net = chain(4);
        net.branches[1].in_service = false;
        assert_eq!(connected_components(&net), 2);
        let labels = component_labels(&net);
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[2], labels[3]);
        assert_ne!(labels[0], labels[2]);
    }

    #[test]
    fn every_chain_edge_is_a_bridge() {
        let net = chain(4);
        for i in 0..net.branches.len() {
            assert!(outage_islands(&net, i), "edge {i} should be a bridge");
        }
    }

    #[test]
    fn ring_edges_are_not_bridges() {
        let mut net = chain(4);
        net.branches.push(Branch::line(3, 0, 0.01, 0.1, 0.0, 100.0));
        for i in 0..net.branches.len() {
            assert!(!outage_islands(&net, i), "ring edge {i} is not a bridge");
        }
    }

    #[test]
    fn stranded_buses_downstream_of_bridge() {
        let net = chain(4);
        assert_eq!(stranded_buses(&net, 1), vec![2, 3]);
        assert_eq!(stranded_buses(&net, 0), vec![1, 2, 3]);
    }

    #[test]
    fn degrees_of_chain() {
        assert_eq!(degrees(&chain(4)), vec![1, 2, 2, 1]);
    }

    #[test]
    fn empty_network() {
        let net = Network::new("empty");
        assert_eq!(connected_components(&net), 0);
        assert!(component_labels(&net).is_empty());
    }
}
