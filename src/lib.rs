//! # gridmind-suite
//!
//! Umbrella crate for GridMind-RS. Re-exports every workspace crate so that
//! the repository-level examples and integration tests have a single import
//! root. Library users should depend on the individual crates (most likely
//! [`gridmind_core`]) directly.

pub use gm_acopf as acopf;
pub use gm_agents as agents;
pub use gm_contingency as contingency;
pub use gm_network as network;
pub use gm_numeric as numeric;
pub use gm_powerflow as powerflow;
pub use gm_sparse as sparse;
pub use gridmind_core as core;
