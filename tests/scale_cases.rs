//! Tier-1 coverage for the interconnect-scale tier (PR 10).
//!
//! Only `synth1354` is exercised here — the runtime size cap that keeps
//! tier-1 wall time bounded. The 2869/9241-bus cases run in `bench_scale`
//! and the CI `scale` job. The network is generated once per process
//! (`load_scale` caches in a `OnceLock`), so the cost of the sampled DC
//! N-1 calibration is paid a single time across all tests in this binary.

use gm_network::{load_scale, ScaleId};
use gm_sparse::{CsMat, Ordering, SparseLu, Triplets};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// DC B-matrix with the first bus pinned — the same pattern class the
/// Newton Jacobian has (symmetric power-grid Laplacian), and nonsingular.
fn b_matrix(net: &gm_network::Network) -> CsMat<f64> {
    let n = net.n_bus();
    let mut t = Triplets::new(n, n);
    for br in net.branches.iter().filter(|b| b.in_service) {
        let b = 1.0 / br.x_pu;
        let (i, j) = (br.from_bus, br.to_bus);
        if i != 0 && j != 0 {
            t.push(i, i, b);
            t.push(j, j, b);
            t.push(i, j, -b);
            t.push(j, i, -b);
        } else if i != 0 {
            t.push(i, i, b);
        } else if j != 0 {
            t.push(j, j, b);
        }
    }
    t.push(0, 0, 1.0);
    t.to_csr()
}

#[test]
fn synth1354_loads_validates_and_newton_converges() {
    let net = load_scale(ScaleId::Synth1354);
    assert_eq!(net.n_bus(), 1354);
    net.validate().expect("synth1354 must validate");
    assert_eq!(gm_network::topology::connected_components(net), 1);

    let rep = gm_powerflow::solve(
        net,
        &gm_powerflow::PfOptions {
            enforce_q_limits: false,
            ..Default::default()
        },
    )
    .expect("Newton must converge on synth1354 from a flat start");
    assert!(
        rep.min_vm.0 > 0.8,
        "voltage collapse: min vm {}",
        rep.min_vm.0
    );
    // Power balance holds at scale.
    let gen: f64 = rep.gens.iter().map(|g| g.p_mw).sum();
    assert!((gen - net.total_load_mw() - rep.losses_mw).abs() < 1.0);
}

#[test]
fn synth1354_resolves_by_name() {
    let (net, conf) = gm_network::load_case("synth1354").expect("name must resolve");
    assert_eq!(net.n_bus(), 1354);
    assert_eq!(conf, 1.0);
}

#[test]
fn synth1354_generation_is_deterministic() {
    // Fresh generation must match the cached network bit-for-bit.
    let cached = load_scale(ScaleId::Synth1354);
    let fresh = gm_network::generate_scale(&ScaleId::Synth1354.spec()).unwrap();
    assert_eq!(cached.branches.len(), fresh.branches.len());
    for (a, b) in cached.branches.iter().zip(&fresh.branches) {
        assert_eq!(a.x_pu.to_bits(), b.x_pu.to_bits());
        assert_eq!(a.rating_mva.to_bits(), b.rating_mva.to_bits());
    }
    for (a, b) in cached.loads.iter().zip(&fresh.loads) {
        assert_eq!(a.p_mw.to_bits(), b.p_mw.to_bits());
    }
}

/// Satellite: determinism pin for the AMD ordering — same matrix, same
/// permutation, every time, at real scale.
#[test]
fn amd_permutation_is_deterministic_on_synth1354() {
    let net = load_scale(ScaleId::Synth1354);
    let b = b_matrix(net);
    let p1 = Ordering::Amd.permutation(&b).unwrap();
    let p2 = Ordering::Amd.permutation(&b).unwrap();
    assert_eq!(p1, p2, "AMD must be deterministic");
    // And it is a valid permutation of 0..n.
    let mut seen = vec![false; b.rows()];
    for &v in &p1 {
        assert!(!seen[v], "duplicate index {v}");
        seen[v] = true;
    }
    assert!(seen.iter().all(|&s| s));
}

/// Satellite: the lane-blocked panel kernel in `solve_many_in_place` is
/// pinned bitwise against the scalar per-column path on a 64-RHS panel at
/// case1354 scale.
#[test]
fn solve_many_lane_block_matches_scalar_path_at_1354() {
    let net = load_scale(ScaleId::Synth1354);
    let b = b_matrix(net);
    let lu = SparseLu::factor(&b).expect("B matrix must factor");
    let n = b.rows();
    const NRHS: usize = 64;

    let mut rng = SmallRng::seed_from_u64(0x1354_0064);
    let panel_init: Vec<f64> = (0..n * NRHS).map(|_| rng.random_range(-2.0..2.0)).collect();

    // Lane-blocked panel solve (structure-of-arrays layout).
    let mut panel = panel_init.clone();
    let mut scratch = vec![0.0f64; n * NRHS + NRHS];
    lu.solve_many_in_place(&mut panel, NRHS, &mut scratch);

    // Scalar per-column reference.
    let mut col = vec![0.0f64; n];
    let mut col_scratch = vec![0.0f64; n];
    for s in 0..NRHS {
        for i in 0..n {
            col[i] = panel_init[i * NRHS + s];
        }
        lu.solve_in_place(&mut col, &mut col_scratch);
        for i in 0..n {
            assert_eq!(
                panel[i * NRHS + s].to_bits(),
                col[i].to_bits(),
                "lane {s}, row {i}: panel kernel diverged from scalar path"
            );
        }
    }
}
