//! End-to-end SLO gate and flight-recorder acceptance:
//!
//! * the committed `slo.toml` must pass both the clean soak and the
//!   seeded chaos soak (the same evaluation `gm-trace slo` performs in
//!   CI), and a deliberately violated spec must fail the same traces;
//! * a forced chaos violation must produce a flight-recorder dump that
//!   is byte-deterministic under the virtual clock;
//! * the audit lint's notion of valid `slo.toml` keys must match the
//!   telemetry parser's, so the two sides cannot drift apart silently.

use gm_faults::{FaultInjector, FaultKind, FaultRule};
use gm_serve::workload::{default_script, run, WorkloadConfig, WorkloadReport};
use gm_telemetry::{find_snapshot, SloSpec};

fn committed_spec() -> Result<SloSpec, String> {
    let text = std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/slo.toml"))
        .map_err(|e| format!("reading slo.toml: {e}"))?;
    SloSpec::parse(&text)
}

fn small_config(faults: Option<FaultInjector>) -> WorkloadConfig {
    WorkloadConfig {
        workers: 4,
        sessions: 6,
        queue_capacity: 24,
        cache_capacity: 64,
        script: default_script(),
        faults,
    }
}

#[test]
fn committed_slo_passes_clean_and_chaos_soaks() {
    let spec = committed_spec().expect("committed slo.toml is readable and parses");
    for faults in [None, Some(FaultInjector::chaos(7, 150))] {
        let chaos = faults.is_some();
        let report = run(&small_config(faults));
        assert!(
            report.passed(),
            "chaos={chaos}: workload failed: {}",
            report.to_json()
        );
        let snap = find_snapshot(&report.telemetry).expect("trace embeds a snapshot");
        let violations = spec.evaluate(&snap);
        assert!(
            violations.is_empty(),
            "chaos={chaos}: committed slo.toml violated: {violations:?}"
        );
    }
}

#[test]
fn violated_and_absent_kind_specs_fail_a_real_trace() {
    let report = run(&small_config(None));
    assert!(report.passed(), "workload failed: {}", report.to_json());
    let snap = find_snapshot(&report.telemetry).expect("trace embeds a snapshot");

    // A sub-microsecond p50 target is unmeetable by any real solve.
    let violated = SloSpec::parse("[pf]\np50_ms = 0.0001\n").expect("spec parses");
    let violations = violated.evaluate(&snap);
    assert!(
        violations
            .iter()
            .any(|v| v.kind == "pf" && v.what == "p50_ms"),
        "expected a pf p50 violation, got {violations:?}"
    );

    // A kind the classifier never produces has no sketch: gating it must
    // fail rather than silently pass.
    let ghost = SloSpec::parse("[ghost]\np99_ms = 1000.0\n").expect("spec parses");
    let violations = ghost.evaluate(&snap);
    assert_eq!(violations.len(), 1, "{violations:?}");
    assert_eq!(violations[0].what, "absent");
}

/// The dump `gm-serve --check` writes on a gate violation, rebuilt
/// in-process: the merged flight ring under a `"flight"` key.
fn flight_dump(report: &WorkloadReport) -> String {
    let flight = report
        .telemetry
        .get("flight")
        .cloned()
        .unwrap_or(serde_json::Value::Array(Vec::new()));
    // Infallible for JSON values already in memory; the caller's
    // content assertions catch a degenerate empty dump regardless.
    serde_json::to_string_pretty(&serde_json::json!({ "flight": flight })).unwrap_or_default()
}

#[test]
fn forced_chaos_violation_dumps_a_byte_deterministic_flight_recording() {
    // A scripted injector saturates the admission queue from the 9th
    // hit onward: the driver's bounded retry budget runs dry,
    // `exhausted_retries` breaks the lossless invariant, and the gate
    // dumps the flight ring. One worker keeps server-ring event order
    // deterministic; everything in the dump is seq + virtual time, so
    // two runs must produce identical bytes.
    let config = || WorkloadConfig {
        workers: 1,
        sessions: 3,
        queue_capacity: 16,
        cache_capacity: 64,
        script: default_script(),
        faults: Some(FaultInjector::scripted(vec![FaultRule::new(
            "serve.queue",
            FaultKind::QueueSaturate,
            8,
            u64::MAX,
        )])),
    };

    let first = run(&config());
    assert!(
        !first.passed(),
        "saturation storm must violate the gate: {}",
        first.to_json()
    );
    assert!(
        first.exhausted_retries > 0,
        "retry budget must run dry: {}",
        first.to_json()
    );
    let dump = flight_dump(&first);
    assert!(
        dump.contains("serve.enqueue") && dump.contains("serve.pickup"),
        "dump must carry the pre-violation event tail: {dump}"
    );

    let second = run(&config());
    assert!(!second.passed());
    assert_eq!(
        dump,
        flight_dump(&second),
        "flight dump must be byte-deterministic under the virtual clock"
    );
}

#[test]
fn audit_slo_key_list_matches_the_telemetry_parser() {
    // gm-audit validates slo.toml keys without depending on
    // gm-telemetry; this is the one place that sees both lists.
    assert_eq!(gm_audit::xref::SLO_TOML_KEYS, gm_telemetry::SLO_KEYS);
}
