//! Telemetry integration tests: a scripted conversation must leave a
//! coherent span tree and nonzero solver counters in the session
//! registry, two identical sessions must produce identical metrics
//! (replayability), and the instrumentation must stay cheap enough to
//! leave always-on.

use gm_network::{cases, CaseId};
use gm_powerflow::{solve, PfOptions};
use gridmind_core::{GridMind, ModelProfile};
use std::time::Instant;

fn scripted_session() -> Option<GridMind> {
    let mut gm = GridMind::new(ModelProfile::by_name("GPT-5")?);
    gm.ask("solve case30");
    gm.ask("run the n-1 contingency analysis");
    Some(gm)
}

#[test]
fn scripted_session_produces_span_tree_and_solver_counters() {
    let gm = scripted_session().expect("built-in GPT-5 profile");
    let snap = gm.session.telemetry.snapshot();

    // Every solver layer the conversation touched must have counted
    // real work: IPM iterations from the ACOPF turn, Newton iterations
    // and LU factorizations from the N-1 sweep, and the sweep itself.
    for key in [
        "pf.newton.iterations",
        "acopf.ipm.iterations",
        "ca.outages_evaluated",
        "sparse.lu.factorizations",
        "tool.invocations",
        "llm.turns",
    ] {
        let n = snap.counters.get(key).copied().unwrap_or(0);
        assert!(n > 0, "counter {key} is {n}, expected nonzero");
    }

    // The span tree nests agent work under the coordinator: each
    // `coordinator.ask` root has a `coordinator.step` child, and the
    // solver spans hang off the tool spans (never off the root).
    let roots: Vec<_> = snap
        .spans
        .iter()
        .filter(|s| s.parent.is_none() && s.name == "coordinator.ask")
        .collect();
    assert_eq!(roots.len(), 2, "one root span per ask");
    for root in &roots {
        assert!(
            snap.spans
                .iter()
                .any(|s| s.parent == Some(root.id) && s.name == "coordinator.step"),
            "root span {} has no coordinator.step child",
            root.id
        );
        assert!(root.dur_s.is_some(), "root span closed");
    }
    let newton = snap
        .spans
        .iter()
        .find(|s| s.name == "pf.newton.solve")
        .expect("newton spans recorded");
    let parent = &snap.spans[newton.parent.expect("newton span is nested")];
    assert_ne!(parent.name, "coordinator.ask");

    // The rayon-parallel contingency sweep re-parents its workers onto
    // the sweep span, so per-outage solves stay in the tree. Under the
    // default cascade mode most outages are screened out without an AC
    // solve; every outage that *was* AC-evaluated (compensated or
    // full-Newton fallback) must have left at least one child span.
    let sweep = snap
        .spans
        .iter()
        .find(|s| s.name == "ca.sweep")
        .expect("sweep span recorded");
    let sweep_children = snap
        .spans
        .iter()
        .filter(|s| s.parent == Some(sweep.id))
        .count();
    let counter = |k: &str| snap.counters.get(k).copied().unwrap_or(0) as usize;
    let ac_evaluated = counter("ca.screen.compensated") + counter("ca.screen.fallback");
    assert!(ac_evaluated > 0, "cascade AC-verified no outages");
    assert!(
        sweep_children >= ac_evaluated,
        "sweep has {sweep_children} children, expected at least the {ac_evaluated} AC evaluations"
    );
}

#[test]
fn identical_sessions_produce_identical_metrics() {
    // Replayability: the same scripted conversation must count the same
    // work, iteration for iteration. Wall-clock durations differ;
    // counters and deterministic histogram totals must not.
    let a = scripted_session().expect("built-in GPT-5 profile");
    let b = scripted_session().expect("built-in GPT-5 profile");
    let (sa, sb) = (
        a.session.telemetry.snapshot(),
        b.session.telemetry.snapshot(),
    );
    // `llm.tokens` is estimated from the narrated text, which embeds
    // *measured* tool wall times ("solved in 3.1 ms"), so its digit
    // count — and hence the estimate — can wobble by a token or two.
    // Every other counter is an exact work count and must match.
    let exact = |s: &gm_telemetry::TelemetrySnapshot| {
        let mut c = s.counters.clone();
        c.remove("llm.tokens");
        c
    };
    assert_eq!(exact(&sa), exact(&sb), "counter maps diverged");
    let tokens = |s: &gm_telemetry::TelemetrySnapshot| s.counters["llm.tokens"];
    assert!(
        tokens(&sa).abs_diff(tokens(&sb)) <= 8,
        "token estimates diverged beyond formatting noise: {} vs {}",
        tokens(&sa),
        tokens(&sb)
    );
    assert_eq!(
        sa.spans.len(),
        sb.spans.len(),
        "span trees have different sizes"
    );
    let names = |s: &gm_telemetry::TelemetrySnapshot| {
        let mut v: Vec<String> = s.spans.iter().map(|sp| sp.name.clone()).collect();
        v.sort();
        v
    };
    assert_eq!(names(&sa), names(&sb), "span name multisets diverged");
    // Virtual time mixes the seeded model latencies with *measured*
    // tool wall time (see VirtualClock::measure), so it is close but
    // not bit-identical across runs — only work counts are.
    assert!((sa.virtual_now_s - sb.virtual_now_s).abs() < 1.0);
}

#[test]
fn newton_telemetry_overhead_is_small_on_case118() {
    // Budget: <2 % wall overhead for the counters + span guard on a
    // case118 Newton solve. Wall timing in CI is noisy, so the assert
    // uses a very generous 1.5× margin — it exists to catch an
    // accidentally quadratic or allocating hot path, not to certify
    // the 2 % figure (BENCH_pf.json is the place to measure that).
    let net = cases::load(CaseId::Ieee118);
    let opts = PfOptions::default();
    let time_solves = |n: usize| -> f64 {
        let mut best = f64::INFINITY;
        for _ in 0..n {
            let t0 = Instant::now();
            let rep = solve(&net, &opts).expect("case118 converges");
            assert!(rep.converged);
            best = best.min(t0.elapsed().as_secs_f64());
        }
        best
    };
    // Warm-up, then best-of-N with no collector installed (the
    // counter/span calls hit the empty-TLS fast path).
    time_solves(2);
    let bare = time_solves(8);
    // Best-of-N with a collector recording everything.
    let reg = gm_telemetry::Registry::new();
    let _guard = reg.install();
    let instrumented = time_solves(8);
    assert!(
        reg.counters()["pf.newton.solves"] >= 8,
        "collector actually recorded"
    );
    assert!(
        instrumented < bare * 1.5 + 1e-3,
        "instrumented {instrumented:.6}s vs bare {bare:.6}s — telemetry overhead too high"
    );
}
