//! Cross-crate solver-stack consistency tests: the power flow, DC power
//! flow, economic dispatch, DC-OPF, and ACOPF must tell one coherent
//! numerical story on every case.

use gm_acopf::{economic_dispatch, solve_acopf, solve_dcopf, AcopfOptions, IpmOptions};
use gm_network::{cases, CaseId};
use gm_powerflow::{solve, solve_dc, PfOptions};

#[test]
fn cost_hierarchy_ed_dcopf_acopf() {
    // ED (no network) ≤ DC-OPF (lossless network) ≤ ACOPF (full physics),
    // all within a loss-sized band.
    for id in [CaseId::Ieee14, CaseId::Ieee30, CaseId::Ieee57] {
        let net = cases::load(id);
        let ed = economic_dispatch(&net, net.total_load_mw());
        let dc = solve_dcopf(&net, &IpmOptions::default()).unwrap();
        let ac = solve_acopf(&net, &AcopfOptions::default()).unwrap();
        assert!(
            ed.cost <= dc.objective_cost + 1e-6,
            "{id:?}: ED {} !<= DCOPF {}",
            ed.cost,
            dc.objective_cost
        );
        assert!(
            dc.objective_cost <= ac.objective_cost + 1e-6,
            "{id:?}: DCOPF {} !<= ACOPF {}",
            dc.objective_cost,
            ac.objective_cost
        );
        assert!(
            ac.objective_cost < ed.cost * 1.30,
            "{id:?}: ACOPF {} implausibly above the dispatch bound {}",
            ac.objective_cost,
            ed.cost
        );
    }
}

#[test]
fn dc_flows_approximate_ac_active_flows() {
    let net = cases::load(CaseId::Ieee118);
    let dc = solve_dc(&net).unwrap();
    let ac = solve(
        &net,
        &PfOptions {
            enforce_q_limits: false,
            ..Default::default()
        },
    )
    .unwrap();
    // Correlate active flows on heavily loaded branches.
    let mut rel_err_sum = 0.0;
    let mut n = 0;
    for (idx, bf) in ac.branches.iter().enumerate() {
        if bf.p_from_mw.abs() > 30.0 {
            rel_err_sum += ((dc.flow_mw[idx] - bf.p_from_mw) / bf.p_from_mw).abs();
            n += 1;
        }
    }
    assert!(n > 20, "expected many loaded branches, got {n}");
    let mean_rel = rel_err_sum / n as f64;
    assert!(
        mean_rel < 0.25,
        "DC should approximate AC active flows; mean relative error {mean_rel:.3}"
    );
}

#[test]
fn acopf_dispatch_power_flows_feasibly() {
    // Pin the ACOPF dispatch into the case and confirm Newton agrees.
    for id in [CaseId::Ieee14, CaseId::Ieee118] {
        let net = cases::load(id);
        let sol = solve_acopf(&net, &AcopfOptions::default()).unwrap();
        let mut pf_net = net.clone();
        for (gi, g) in pf_net.gens.iter_mut().enumerate() {
            g.p_mw = sol.gen_dispatch_mw[gi];
            g.vm_setpoint_pu = sol.bus_vm_pu[g.bus];
        }
        let rep = solve(
            &pf_net,
            &PfOptions {
                enforce_q_limits: false,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(rep.converged, "{id:?}");
        assert!(
            (rep.losses_mw - sol.losses_mw).abs() < 1.0,
            "{id:?}: PF losses {} vs ACOPF {}",
            rep.losses_mw,
            sol.losses_mw
        );
        // Voltages agree bus by bus.
        for (i, b) in rep.buses.iter().enumerate() {
            assert!(
                (b.vm_pu - sol.bus_vm_pu[i]).abs() < 5e-3,
                "{id:?} bus {}: PF {} vs OPF {}",
                b.id,
                b.vm_pu,
                sol.bus_vm_pu[i]
            );
        }
    }
}

#[test]
fn losses_scale_superlinearly_with_load() {
    // I²R: at higher loading, marginal losses grow.
    let base = cases::load(CaseId::Ieee30);
    let loss_at = |scale: f64| -> f64 {
        let mut net = base.clone();
        gm_network::Modification::ScaleAllLoads { factor: scale }
            .apply(&mut net)
            .unwrap();
        solve(
            &net,
            &PfOptions {
                enforce_q_limits: false,
                ..Default::default()
            },
        )
        .unwrap()
        .losses_mw
    };
    let l08 = loss_at(0.8);
    let l10 = loss_at(1.0);
    let l12 = loss_at(1.2);
    assert!(l08 < l10 && l10 < l12);
    assert!(
        (l12 - l10) > (l10 - l08),
        "marginal losses must grow: {l08:.2}, {l10:.2}, {l12:.2}"
    );
}

#[test]
fn matpower_case9_opf_matches_published_objective() {
    // Third authentic-data validation point: MATPOWER's `runopf(case9)`
    // objective is 5296.69 $/h.
    let net = gm_network::parse_matpower(gm_network::SAMPLE_CASE9, "WSCC 9-bus").unwrap();
    let sol = solve_acopf(&net, &AcopfOptions::default()).unwrap();
    assert!(
        (sol.objective_cost - 5296.69).abs() < 10.0,
        "case9 OPF objective {:.2} vs MATPOWER's 5296.69",
        sol.objective_cost
    );
    // And the dispatch respects the published pattern: unit 2 is the
    // cheapest quadratic and carries the largest share.
    let argmax = sol
        .gen_dispatch_mw
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .unwrap()
        .0;
    assert_eq!(argmax, 1, "dispatch {:?}", sol.gen_dispatch_mw);
}

#[test]
fn all_cases_full_stack_smoke() {
    // Every case: PF converges, ACOPF solves, DC flows balance.
    for id in CaseId::ALL {
        let net = cases::load(id);
        net.validate().unwrap_or_else(|e| panic!("{id:?}: {e:?}"));
        let pf = solve(&net, &PfOptions::default()).unwrap_or_else(|e| panic!("{id:?}: {e}"));
        assert!(pf.converged);
        let ac =
            solve_acopf(&net, &AcopfOptions::default()).unwrap_or_else(|e| panic!("{id:?}: {e}"));
        assert!(ac.solved);
        // ACOPF cost cannot exceed scheduled-dispatch cost evaluated via
        // its own curves at the PF dispatch… it should at least be in a
        // sane band relative to demand.
        let per_mwh = ac.objective_cost / net.total_load_mw();
        assert!(
            (1.0..100.0).contains(&per_mwh),
            "{id:?}: {per_mwh:.2} $/MWh out of band"
        );
    }
}
