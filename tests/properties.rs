//! Property-based tests on the core numerical and data-model invariants.

use gm_network::{caseformat, cases, synth, CaseId, DiffLog, Modification};
use gm_numeric::{Complex, DMat, DenseLu};
use gm_sparse::{CsMat, Ordering, SparseLu, Triplets};
use proptest::prelude::*;

// ---------------------------------------------------------------------
// Sparse linear algebra
// ---------------------------------------------------------------------

/// Builds a random diagonally dominant sparse matrix from proptest input.
fn sparse_from(n: usize, entries: &[(usize, usize, f64)]) -> CsMat<f64> {
    let mut t = Triplets::new(n, n);
    for i in 0..n {
        t.push(i, i, 8.0 + (i as f64) * 0.1);
    }
    for &(i, j, v) in entries {
        let (i, j) = (i % n, j % n);
        if i != j {
            t.push(i, j, v);
        }
    }
    t.to_csr()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn sparse_lu_matches_dense_lu(
        n in 2usize..24,
        entries in prop::collection::vec(
            (0usize..32, 0usize..32, -2.0f64..2.0), 0..80),
        rhs_seed in -5.0f64..5.0,
    ) {
        let a = sparse_from(n, &entries);
        let b: Vec<f64> = (0..n).map(|i| rhs_seed * (i as f64 + 1.0).sin()).collect();
        let xs = SparseLu::factor(&a).unwrap().solve(&b);
        let mut d = DMat::zeros(n, n);
        a.to_dense_with(|i, j, v| d[(i, j)] = v);
        let xd = DenseLu::factor(&d).unwrap().solve(&b);
        for (s, dv) in xs.iter().zip(&xd) {
            prop_assert!((s - dv).abs() < 1e-8, "{s} vs {dv}");
        }
    }

    #[test]
    fn sparse_lu_residual_small_for_any_ordering(
        n in 2usize..20,
        entries in prop::collection::vec(
            (0usize..32, 0usize..32, -2.0f64..2.0), 0..60),
    ) {
        let a = sparse_from(n, &entries);
        let b = vec![1.0; n];
        for ordering in [Ordering::Natural, Ordering::MinDegree] {
            let x = SparseLu::factor_with(&a, ordering, 0.1).unwrap().solve(&b);
            let ax = a.mul_vec(&x);
            for (axi, bi) in ax.iter().zip(&b) {
                prop_assert!((axi - bi).abs() < 1e-8);
            }
        }
    }

    #[test]
    fn transpose_is_involution(
        n in 1usize..16,
        entries in prop::collection::vec(
            (0usize..16, 0usize..16, -3.0f64..3.0), 0..50),
    ) {
        let a = sparse_from(n, &entries);
        prop_assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn complex_field_axioms(
        ar in -10.0f64..10.0, ai in -10.0f64..10.0,
        br in -10.0f64..10.0, bi in -10.0f64..10.0,
    ) {
        let a = Complex::new(ar, ai);
        let b = Complex::new(br, bi);
        // Commutativity and conjugate homomorphism.
        prop_assert!(((a * b) - (b * a)).abs() < 1e-12);
        prop_assert!(((a * b).conj() - a.conj() * b.conj()).abs() < 1e-9);
        // |ab| = |a||b|.
        prop_assert!(((a * b).abs() - a.abs() * b.abs()).abs() < 1e-9 * (1.0 + a.abs() * b.abs()));
    }
}

// ---------------------------------------------------------------------
// Network model and diff log
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn diff_log_replay_reconstructs_any_modification_sequence(
        loads in prop::collection::vec((1u32..15, 1.0f64..120.0), 1..8),
        scale in 0.5f64..1.5,
    ) {
        let base = cases::load(CaseId::Ieee14);
        let mut live = base.clone();
        let mut log = DiffLog::new();
        for (bus_id, p_mw) in loads {
            // Some bus ids may not carry loads; SetBusLoad creates them.
            log.apply(&mut live, Modification::SetBusLoad { bus_id, p_mw, q_mvar: None })
                .unwrap();
        }
        log.apply(&mut live, Modification::ScaleAllLoads { factor: scale }).unwrap();
        let replayed = log.replay(&base).unwrap();
        prop_assert!((replayed.total_load_mw() - live.total_load_mw()).abs() < 1e-9);
        prop_assert_eq!(replayed.loads.len(), live.loads.len());
        // Hash is deterministic under replay.
        prop_assert_eq!(log.hash(), log.hash());
    }

    #[test]
    fn case_format_round_trip_preserves_modified_networks(
        bus in 1u32..14,
        p in 1.0f64..90.0,
    ) {
        let mut net = cases::load(CaseId::Ieee14);
        Modification::SetBusLoad { bus_id: bus + 1, p_mw: p, q_mvar: None }
            .apply(&mut net)
            .unwrap();
        let text = caseformat::serialize(&net);
        let back = caseformat::parse(&text).unwrap();
        prop_assert!((back.total_load_mw() - net.total_load_mw()).abs() < 1e-9);
        prop_assert_eq!(back.branches.len(), net.branches.len());
        prop_assert!((back.total_gen_capacity_mw() - net.total_gen_capacity_mw()).abs() < 1e-9);
    }
}

// ---------------------------------------------------------------------
// Synthetic generator + power flow robustness
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn random_synthetic_networks_are_solvable(
        seed in 0u64..5000,
        n_bus in 20usize..60,
    ) {
        let n_trafo = 4 + (seed as usize % 4);
        let n_line = n_bus + 10 + (seed as usize % 12);
        let spec = synth::SynthSpec {
            name: format!("prop-{seed}"),
            n_bus,
            n_gen: (n_bus / 5).max(2),
            n_load: (n_bus * 2 / 3).max(2),
            n_line,
            n_trafo,
            total_load_mw: 18.0 * n_bus as f64,
            total_gen_capacity_mw: 45.0 * n_bus as f64,
            seed,
            rating_margin: 1.0,
        };
        let net = synth::generate(&spec);
        prop_assert!(net.is_ok(), "seed {seed}, n_bus {n_bus}: {:?}", net.err());
        let net = net.unwrap();
        prop_assert!(net.validate().is_ok());
        // Newton power flow must converge on every generated network.
        let rep = gm_powerflow::solve(
            &net,
            &gm_powerflow::PfOptions { enforce_q_limits: false, ..Default::default() },
        );
        prop_assert!(rep.is_ok(), "seed {seed}, n_bus {n_bus}: {:?}", rep.err());
        let rep = rep.unwrap();
        prop_assert!(rep.min_vm.0 > 0.8, "voltage collapse at seed {seed}");
        // Power balance holds.
        let gen: f64 = rep.gens.iter().map(|g| g.p_mw).sum();
        prop_assert!((gen - net.total_load_mw() - rep.losses_mw).abs() < 0.5);
    }
}
