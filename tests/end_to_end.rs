//! End-to-end integration tests: full conversational workflows through
//! the assembled GridMind system, across model profiles and cases.

use gridmind_core::{AgentKind, GridMind, ModelProfile};

#[test]
fn every_paper_model_solves_case118() {
    // Figure 3 (left): 100 % success rate across all six backends.
    for profile in ModelProfile::paper_models() {
        let name = profile.name.clone();
        let mut gm = GridMind::new(profile);
        let reply = gm.ask("solve case118");
        assert!(reply.steps[0].completed, "{name}: {}", reply.text);
        assert!(
            reply.text.contains("Solved ACOPF"),
            "{name} failed to solve: {}",
            reply.text
        );
        let sol = gm.session.fresh_acopf().expect("solution deposited");
        assert!(sol.solved);
        assert!(sol.objective_cost > 10_000.0);
    }
}

#[test]
fn fig9_cross_domain_workflow() {
    let mut gm = GridMind::new(ModelProfile::by_name("GPT-5").unwrap());
    let reply = gm.ask(
        "Solve IEEE 118 case, then run contingency analysis and identify critical elements for reinforcement",
    );
    assert_eq!(reply.steps.len(), 2);
    assert_eq!(reply.steps[0].agent, AgentKind::Acopf);
    assert_eq!(reply.steps[1].agent, AgentKind::Contingency);
    assert!(reply.steps.iter().all(|s| s.completed), "{}", reply.text);
    // Cross-agent context: the CA agent analyzed the ACOPF agent's case.
    let rep = gm.session.fresh_contingency().expect("CA deposited report");
    assert_eq!(rep.case_name, "IEEE 118-bus system");
    assert_eq!(rep.n_contingencies, 186);
    assert!(reply.text.contains("Most critical elements"));
}

#[test]
fn iterative_what_if_preserves_context() {
    let mut gm = GridMind::new(ModelProfile::by_name("GPT-o4 Mini").unwrap());
    gm.ask("solve case30");
    let c0 = gm.session.fresh_acopf().unwrap().objective_cost;
    gm.ask("set the load at bus 7 to 40 MW");
    let c1 = gm.session.fresh_acopf().unwrap().objective_cost;
    gm.ask("now set the load at bus 7 to 60 MW");
    let c2 = gm.session.fresh_acopf().unwrap().objective_cost;
    assert!(c1 > c0, "{c1} !> {c0}");
    assert!(c2 > c1, "{c2} !> {c1}");
    assert_eq!(gm.session.diff_count(), 2);
}

#[test]
fn contingency_question_without_prior_solve_recovers() {
    // The CA agent must bootstrap the base case itself.
    let mut gm = GridMind::new(ModelProfile::by_name("GPT-o3").unwrap());
    let reply = gm.ask("what are the most critical contingencies in ieee 57");
    assert!(reply.steps[0].completed, "{}", reply.text);
    assert!(
        reply.text.contains("Most critical elements"),
        "{}",
        reply.text
    );
    assert!(gm.session.fresh_contingency().is_some());
}

#[test]
fn stale_artifacts_refresh_after_modification() {
    let mut gm = GridMind::new(ModelProfile::by_name("GPT-5 Nano").unwrap());
    gm.ask("solve case14 then run the contingency analysis");
    assert!(gm.session.fresh_contingency().is_some());
    gm.ask("increase the load at bus 9 to 60 MW");
    // The modification stales the CA report but refreshes the ACOPF.
    assert!(gm.session.fresh_contingency().is_none());
    assert!(gm.session.fresh_acopf().is_some());
    // Ask again: the CA agent recomputes.
    let reply = gm.ask("run the n-1 contingency analysis again");
    assert!(reply.steps[0].completed, "{}", reply.text);
    assert!(gm.session.fresh_contingency().is_some());
}

#[test]
fn gpt5_mini_diverges_from_the_pack() {
    // Table 1's anomaly: GPT-5 Mini ranks by a different analytical
    // approach and reports a (weakly) different critical set.
    let run = |model: &str| -> Vec<String> {
        let mut gm = GridMind::new(ModelProfile::by_name(model).unwrap());
        let reply = gm.ask("find the top 5 critical contingencies in case118");
        assert!(reply.steps[0].completed, "{model}: {}", reply.text);
        gm.session
            .fresh_contingency()
            .expect("report cached")
            .top_labels(5)
    };
    let gpt5 = run("GPT-5");
    let o3 = run("GPT-o3");
    let claude = run("Claude 4 Sonnet");
    let mini = run("GPT-5 Mini");
    // Composite-strategy backends agree exactly.
    assert_eq!(gpt5, o3);
    assert_eq!(gpt5, claude);
    // The overload-first backend produces a different list.
    assert_ne!(gpt5, mini, "mini must diverge: {mini:?}");
}

#[test]
fn latency_ordering_matches_paper() {
    // Table 1 ordering: GPT-5 slowest, o3/mini fastest.
    let time_for = |model: &str| -> f64 {
        let mut gm = GridMind::new(ModelProfile::by_name(model).unwrap());
        let reply = gm.ask("run the full contingency analysis for case14");
        assert!(reply.steps[0].completed);
        reply.elapsed_s
    };
    let gpt5 = time_for("GPT-5");
    let o3 = time_for("GPT-o3");
    let sonnet = time_for("Claude 4 Sonnet");
    assert!(gpt5 > sonnet, "GPT-5 {gpt5:.1}s !> Sonnet {sonnet:.1}s");
    assert!(sonnet > o3, "Sonnet {sonnet:.1}s !> o3 {o3:.1}s");
}

#[test]
fn generator_outage_conversation() {
    let mut gm = GridMind::new(ModelProfile::by_name("GPT-o3").unwrap());
    gm.ask("solve case14");
    let reply = gm.ask("what happens if we lose a generator unit");
    assert!(reply.steps[0].completed, "{}", reply.text);
    assert!(reply.text.contains("generating units"), "{}", reply.text);
    assert!(reply.text.contains("Most critical unit"), "{}", reply.text);
}

#[test]
fn security_constrained_dispatch_conversation() {
    // Routed to the ACOPF agent, which owns the SCOPF tool (an extension
    // tool registered beyond the paper's original set).
    let mut gm = GridMind::new(ModelProfile::by_name("GPT-o4 Mini").unwrap());
    let reply = gm.ask("give me a security-constrained dispatch for case30");
    assert_eq!(reply.steps[0].agent, AgentKind::Acopf);
    assert!(reply.steps[0].completed, "{}", reply.text);
    assert!(reply.text.contains("security premium"), "{}", reply.text);
    assert!(gm.session.fresh_acopf().is_some());
}

#[test]
fn unknown_requests_answered_gracefully() {
    let mut gm = GridMind::new(ModelProfile::by_name("GPT-5").unwrap());
    let reply = gm.ask("please make me a sandwich");
    assert!(reply.steps[0].completed);
    // No tools should have run; the agent explains its scope.
    assert_eq!(gm.metrics()[0].tool_calls, 0);
}

#[test]
fn instrumentation_accumulates_across_turns() {
    let mut gm = GridMind::new(ModelProfile::by_name("GPT-o4 Mini").unwrap());
    gm.ask("solve case14");
    gm.ask("what is the current status");
    gm.ask("run contingency analysis");
    let metrics = gm.metrics();
    assert_eq!(metrics.len(), 3);
    assert!(metrics.iter().all(|m| m.tokens.total() > 0));
    assert!(metrics.iter().all(|m| m.elapsed_s > 0.0));
    // Virtual clock is monotone across the session.
    assert!(gm.clock().now() >= metrics.iter().map(|m| m.elapsed_s).sum::<f64>() * 0.99);
}
