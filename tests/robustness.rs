//! Robustness tests: adversarial and degenerate inputs through the whole
//! conversational stack must never panic and must always produce a
//! grounded response (the paper's reliability claim depends on this).

use gm_agents::{classify, extract_entities, IntentRule, Schema};
use gridmind_core::{GridMind, ModelProfile};
use proptest::prelude::*;

#[test]
fn degenerate_inputs_never_break_the_coordinator() {
    let mut gm = GridMind::new(ModelProfile::by_name("GPT-o4 Mini").unwrap());
    for input in [
        "",
        "   ",
        "?",
        "!!!",
        "solve",                              // intent without entities
        "solve case -1",                      // nonsense case
        "solve case99999",                    // unknown case
        "set the load at bus 99999 to 10 MW", // bus out of range (needs case)
        "ステーション を 解決",               // non-ASCII
        "solve case14 then then then",        // pathological sequencing
        "SOLVE CASE14",                       // shouting
        "solve\tcase14\n",                    // whitespace soup
    ] {
        let reply = gm.ask(input);
        assert!(!reply.text.is_empty(), "empty reply for {input:?}");
        // Every step ends with a narrated answer, even on failure paths.
        for r in &reply.responses {
            assert!(r.rounds >= 1);
        }
    }
}

#[test]
fn very_long_input_is_handled() {
    let mut gm = GridMind::new(ModelProfile::by_name("GPT-5 Nano").unwrap());
    let long = format!("please {} solve case14", "really ".repeat(5000));
    let reply = gm.ask(&long);
    assert!(reply.steps[0].completed, "{}", reply.text);
    assert!(reply.text.contains("Solved ACOPF"));
}

#[test]
fn contradictory_compound_request_executes_sequentially() {
    let mut gm = GridMind::new(ModelProfile::by_name("GPT-o3").unwrap());
    // Both segments are valid; the second overrides the first's case.
    let reply = gm.ask("solve case14 then solve case30");
    assert_eq!(reply.steps.len(), 2);
    assert!(reply.steps.iter().all(|s| s.completed));
    assert_eq!(gm.session.active_case().as_deref(), Some("case30"));
}

#[test]
fn bus_that_does_not_exist_fails_transparently() {
    let mut gm = GridMind::new(ModelProfile::by_name("GPT-o3").unwrap());
    gm.ask("solve case14");
    let reply = gm.ask("set the load at bus 999 to 10 MW");
    // The tool creates loads at *existing* buses only; bus 999 fails.
    assert!(
        reply.text.contains("failed") || reply.text.contains("does not exist"),
        "failure must be narrated transparently: {}",
        reply.text
    );
    // The diff log must not record the failed modification.
    assert_eq!(gm.session.diff_count(), 0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn nlu_never_panics_on_arbitrary_text(input in ".{0,200}") {
        let _ = extract_entities(&input);
        let rules = [
            IntentRule::new("a", &["solve", "case"], &["acopf"], 0.1),
            IntentRule::new("b", &["contingency"], &["critical"], 0.0),
        ];
        let _ = classify(&input, &rules);
    }

    #[test]
    fn schema_validation_never_panics_on_arbitrary_json(
        n in prop::num::f64::ANY,
        s in ".{0,40}",
        flag in any::<bool>(),
    ) {
        let schema = Schema::object(vec![
            gm_agents::Field::required("x", Schema::number_range(0.0, 10.0), ""),
            gm_agents::Field::optional("tag", Schema::string_enum(&["a", "b"]), ""),
        ]);
        for v in [
            serde_json::json!({"x": n, "tag": s}),
            serde_json::json!([n, s, flag]),
            serde_json::json!(null),
            serde_json::json!({"x": {"nested": s}}),
        ] {
            let _ = schema.validate(&v);
        }
    }

    #[test]
    fn coordinator_survives_fragment_soup(
        parts in prop::collection::vec(
            prop::sample::select(vec![
                "solve", "case14", "load", "bus", "7", "mw", "critical",
                "contingency", "status", "then", "increase", "50", "the",
                "analysis", "n-1", "line", "3",
            ]),
            1..10,
        )
    ) {
        // Random word salads built from domain vocabulary: the system must
        // respond to every one without panicking, and any solver work it
        // does must stay on the small case (nothing here names a big one).
        let mut gm = GridMind::new(ModelProfile::by_name("GPT-o4 Mini").unwrap());
        let input = parts.join(" ");
        let reply = gm.ask(&input);
        prop_assert!(!reply.text.is_empty());
        prop_assert!(reply.elapsed_s >= 0.0);
    }
}
