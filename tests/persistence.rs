//! Session persistence and schema-layer integration tests (§3.4
//! "Session persistence serializes baseline, diffs, artifacts,
//! contingency cache, and rankings for seamless resumption").

use gridmind_core::{GridMind, ModelProfile, SessionContext};
use serde_json::json;

#[test]
fn full_session_survives_save_restore() {
    let mut gm = GridMind::new(ModelProfile::by_name("GPT-o4 Mini").unwrap());
    gm.ask("solve case30");
    gm.ask("set the load at bus 7 to 45 MW");
    gm.ask("run the contingency analysis");
    let blob = gm.session.save();

    // "Resume" in a fresh process.
    let restored = SessionContext::restore(&blob).unwrap();
    assert_eq!(restored.active_case().as_deref(), Some("case30"));
    assert_eq!(restored.diff_count(), 1);
    // Artifacts restored and still fresh (same diff hash).
    let sol = restored.fresh_acopf().expect("ACOPF artifact restored");
    assert!(sol.solved);
    let rep = restored
        .fresh_contingency()
        .expect("contingency artifact restored");
    assert_eq!(rep.n_contingencies, 41);
    // The restored network carries the modification.
    let net = restored.current_network().unwrap();
    let bus7 = net.bus_index(7).unwrap();
    let p: f64 = net
        .loads
        .iter()
        .filter(|l| l.bus == bus7)
        .map(|l| l.p_mw)
        .sum();
    assert!((p - 45.0).abs() < 1e-9);
}

#[test]
fn restored_session_continues_conversationally() {
    let mut gm = GridMind::new(ModelProfile::by_name("GPT-o3").unwrap());
    gm.ask("solve case14");
    let blob = gm.session.save();

    // New system instance with the restored session requires rebuilding
    // agents around it; verify at the session level that stamped state is
    // coherent enough to continue.
    let restored = SessionContext::restore(&blob).unwrap();
    let hash_before = restored.diff_hash();
    restored
        .apply(gm_network::Modification::ScaleAllLoads { factor: 1.1 })
        .unwrap();
    assert_ne!(restored.diff_hash(), hash_before);
    assert!(restored.fresh_acopf().is_none(), "artifact must go stale");
    // And the modified network still solves.
    let net = restored.current_network().unwrap();
    let sol = gm_acopf::solve_acopf(&net, &gm_acopf::AcopfOptions::default()).unwrap();
    assert!(sol.solved);
}

#[test]
fn memory_blob_round_trips_through_json_text() {
    // The whole session must survive serialization to *text* (file/disk).
    let mut gm = GridMind::new(ModelProfile::by_name("GPT-5 Nano").unwrap());
    gm.ask("solve case57");
    let blob = gm.session.save();
    let text = serde_json::to_string(&blob).unwrap();
    assert!(text.len() > 1000, "non-trivial serialized session");
    let parsed: serde_json::Value = serde_json::from_str(&text).unwrap();
    let restored = SessionContext::restore(&parsed).unwrap();
    assert_eq!(restored.active_case().as_deref(), Some("case57"));
    assert_eq!(restored.current_network().unwrap().n_bus(), 57);
}

#[test]
fn schema_layer_rejects_malformed_session() {
    assert!(SessionContext::restore(&json!({"bogus": true})).is_err());
    assert!(SessionContext::restore(&json!(42)).is_err());
}

#[test]
fn tool_provenance_is_auditable_json() {
    // §3.2.1 "Trust and auditability": every narrated number must trace
    // to a stored tool output object.
    let session = SessionContext::new();
    let clock = gm_agents::VirtualClock::new();
    let mut agent =
        gridmind_core::build_acopf_agent(ModelProfile::by_name("GPT-5").unwrap(), session, clock);
    let resp = agent.handle("solve case14");
    assert!(resp.completed);
    let provenance = agent.tools.provenance();
    assert_eq!(provenance.len(), 1);
    let record = &provenance[0];
    assert_eq!(record.tool, "solve_acopf_case");
    assert!(record.result.is_some());
    let cost = record.result.as_ref().unwrap()["objective_cost"]
        .as_f64()
        .unwrap();
    // The narrated cost is exactly the stored tool output's cost.
    assert!(
        resp.text.contains(&format!("{cost:.2}")),
        "narration must quote the stored value {cost:.2}: {}",
        resp.text
    );
    // Records serialize for the audit log.
    let blob = serde_json::to_string(&provenance).unwrap();
    assert!(blob.contains("solve_acopf_case"));
}
