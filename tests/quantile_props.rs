//! Property tests pinning the log-linear quantile sketch against exact
//! nearest-rank percentiles — the soundness contract behind every
//! `serve.latency.*` target in `slo.toml`. The documented guarantee is
//! a relative error of at most `γ − 1` (≈2.2% at the default 32
//! sub-buckets per octave) for samples ≥ 1 ns, and it must survive the
//! production topology: per-worker registries merged into one at server
//! shutdown, queried only after the merge.

use gm_telemetry::{QuantileSketch, Registry};
use proptest::prelude::*;

/// Nearest-rank percentile over a sorted slice: the value at rank
/// `⌈q·n⌉` (clamped to `[1, n]`) — the definition `QuantileSketch`
/// approximates.
fn exact_percentile(sorted: &[f64], q: f64) -> f64 {
    let n = sorted.len();
    let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
    sorted[rank - 1]
}

fn sorted(samples: &[f64]) -> Vec<f64> {
    let mut xs = samples.to_vec();
    xs.sort_by(f64::total_cmp);
    xs
}

proptest! {
    /// Every quantile of every sample set (spanning ten orders of
    /// magnitude, all above `BASE`) estimates within the documented
    /// relative-error bound of the exact nearest-rank percentile.
    #[test]
    fn quantiles_stay_within_the_documented_relative_error(
        samples in proptest::collection::vec(1e-6f64..1e4, 1..400),
        qs in proptest::collection::vec(0.0f64..=1.0, 1..8),
    ) {
        let mut sketch = QuantileSketch::default();
        for &x in &samples {
            sketch.record(x);
        }
        let xs = sorted(&samples);
        let bound = sketch.relative_error_bound();
        for &q in &qs {
            let exact = exact_percentile(&xs, q);
            let est = sketch.quantile(q).expect("non-empty sketch");
            prop_assert!(
                (est - exact).abs() <= exact * bound + 1e-12,
                "q={q}: est {est} vs exact {exact} (bound {bound})"
            );
        }
    }

    /// The bound survives merge-then-query across three worker
    /// registries — elementwise bucket addition loses nothing, so the
    /// merged sketch answers for the union exactly as one sketch that
    /// saw every sample would.
    #[test]
    fn merge_then_query_across_three_registries_holds_the_bound(
        a in proptest::collection::vec(1e-6f64..1e4, 1..150),
        b in proptest::collection::vec(1e-6f64..1e4, 1..150),
        c in proptest::collection::vec(1e-6f64..1e4, 1..150),
    ) {
        let workers = [Registry::new(), Registry::new(), Registry::new()];
        for (reg, shard) in workers.iter().zip([&a, &b, &c]) {
            for &x in shard.iter() {
                reg.record_quantile("serve.latency.pf.total_s", x);
            }
        }
        let server = Registry::new();
        for reg in &workers {
            server.merge_metrics(reg);
        }
        let union = sorted(&a.iter().chain(&b).chain(&c).copied().collect::<Vec<_>>());
        let bound = QuantileSketch::default().relative_error_bound();
        for q in [0.05, 0.5, 0.9, 0.99, 1.0] {
            let exact = exact_percentile(&union, q);
            let est = server
                .quantile_value("serve.latency.pf.total_s", q)
                .expect("merged sketch is non-empty");
            prop_assert!(
                (est - exact).abs() <= exact * bound + 1e-12,
                "q={q}: merged est {est} vs exact {exact} (bound {bound})"
            );
        }
    }
}
