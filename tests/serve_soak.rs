//! Concurrency soak: 8 workers × 32 sessions through gm-serve.
//!
//! The acceptance gate for the serving layer: every admitted request is
//! answered exactly once, answers to identical queries are
//! byte-identical across all 32 sessions, and the cross-session solver
//! cache demonstrably carries the load (hits > 0, far fewer solver
//! misses than requests).

use gm_serve::workload::{default_script, run, WorkloadConfig};

#[test]
fn soak_8_workers_32_sessions_is_deterministic_and_lossless() {
    let config = WorkloadConfig {
        workers: 8,
        sessions: 32,
        queue_capacity: 64,
        cache_capacity: 64,
        script: default_script(),
        faults: None,
    };
    let report = run(&config);

    assert_eq!(
        report.received,
        report.expected,
        "lost responses: {}",
        report.to_json()
    );
    assert_eq!(
        report.distinct,
        report.expected,
        "duplicated responses: {}",
        report.to_json()
    );
    assert_eq!(report.failed, 0, "failed requests: {}", report.to_json());
    assert!(
        report.divergent_positions.is_empty(),
        "cross-session answers diverged at script positions {:?}",
        report.divergent_positions
    );
    assert!(
        report.cache.hits > 0,
        "shared solver cache never hit: {:?}",
        report.cache
    );
    // 32 sessions × 4 queries with an identical script: the distinct
    // solver problems number far below the request count, so misses
    // must too (each unique problem misses at most once per racing
    // worker).
    assert!(
        report.cache.misses < (report.expected as u64) / 2,
        "cache misses {} suggest the cache is not shared",
        report.cache.misses
    );
    assert_eq!(report.sessions_served, 32);
    assert!(report.passed(), "aggregate verdict: {}", report.to_json());
}
