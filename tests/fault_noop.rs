//! The fault harness must be invisible when it injects nothing.
//!
//! Two flavors of "nothing": no injector installed at all (the
//! production default — `gm_faults::inject` is a strict no-op), and a
//! disabled injector installed (the harness is consulted at every site
//! but never fires). In both cases every answer must be **byte
//! identical** to the other, the recovery ladder must never engage, and
//! no degraded-answer caveat may appear — a fault layer that perturbs
//! the fault-free path would poison every baseline it is supposed to
//! protect.

use gm_faults::FaultInjector;
use gridmind_core::{GridMind, ModelProfile, CAVEAT_PREFIX};
use proptest::prelude::*;

/// The query vocabulary the sequences are drawn from: solves, sweeps,
/// mutations, recalls — every tool family the recovery ladder wraps.
fn query_pool() -> Vec<&'static str> {
    vec![
        "solve case14",
        "solve case30",
        "run the n-1 contingency analysis",
        "show me the critical contingencies",
        "set the load at bus 9 to 45 MW",
        "what is the network status",
        "give me a report of the contingency analysis",
    ]
}

fn run_session(
    profile: &ModelProfile,
    queries: &[&str],
    faults: Option<&FaultInjector>,
) -> Vec<String> {
    let _guard = faults.map(FaultInjector::install);
    let mut gm = GridMind::new(profile.clone());
    let replies = queries.iter().map(|q| gm.ask(q).text).collect();
    assert_eq!(
        gm.session.telemetry.sum_prefix("recovery."),
        0,
        "recovery ladder engaged without any injected fault"
    );
    replies
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn disabled_harness_is_byte_invisible(
        tail in prop::collection::vec(prop::sample::select(query_pool()), 0..5)
    ) {
        // Every sequence opens with a solve so at least one injection
        // site is guaranteed to be consulted.
        let mut picks = vec!["solve case14"];
        picks.extend(tail);
        let mut profiles = ModelProfile::paper_models();
        prop_assert!(!profiles.is_empty());
        let profile = profiles.remove(0);
        let baseline = run_session(&profile, &picks, None);
        let disabled = FaultInjector::disabled();
        let with_harness = run_session(&profile, &picks, Some(&disabled));
        prop_assert_eq!(&baseline, &with_harness, "disabled harness changed an answer");
        prop_assert_eq!(disabled.injected_total(), 0, "disabled injector fired");
        prop_assert!(
            baseline.iter().all(|t| !t.contains(CAVEAT_PREFIX)),
            "caveat appeared on the fault-free path"
        );
        // The harness was really in the loop: solver-layer sites were
        // consulted (and declined) rather than bypassed.
        prop_assert!(
            disabled.hits_at("pf.base") + disabled.hits_at("cache.get")
                + disabled.hits_at("acopf.ipm") > 0,
            "no injection site was ever consulted"
        );
    }
}
