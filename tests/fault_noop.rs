//! The fault harness must be invisible when it injects nothing.
//!
//! Two flavors of "nothing": no injector installed at all (the
//! production default — `gm_faults::inject` is a strict no-op), and a
//! disabled injector installed (the harness is consulted at every site
//! but never fires). In both cases every answer must be **byte
//! identical** to the other, the recovery ladder must never engage, and
//! no degraded-answer caveat may appear — a fault layer that perturbs
//! the fault-free path would poison every baseline it is supposed to
//! protect.

use gm_faults::{FaultInjector, FaultKind, FaultRule};
use gridmind_core::{GridMind, ModelProfile, CAVEAT_PREFIX};
use proptest::prelude::*;

/// The query vocabulary the sequences are drawn from: solves, sweeps,
/// mutations, recalls — every tool family the recovery ladder wraps.
fn query_pool() -> Vec<&'static str> {
    vec![
        "solve case14",
        "solve case30",
        "run the n-1 contingency analysis",
        "show me the critical contingencies",
        "set the load at bus 9 to 45 MW",
        "what is the network status",
        "give me a report of the contingency analysis",
    ]
}

fn run_session(
    profile: &ModelProfile,
    queries: &[&str],
    faults: Option<&FaultInjector>,
) -> Vec<String> {
    let _guard = faults.map(FaultInjector::install);
    let mut gm = GridMind::new(profile.clone());
    let replies = queries.iter().map(|q| gm.ask(q).text).collect();
    assert_eq!(
        gm.session.telemetry.sum_prefix("recovery."),
        0,
        "recovery ladder engaged without any injected fault"
    );
    replies
}

/// A `LuSingular` fault under pattern-reuse refactorization must be
/// absorbed *inside* the sparse layer: every attacked refactorization
/// falls back to a full symbolic re-analysis (counted as
/// `sparse.symbolic.fallback`), the recovery ladder never descends, no
/// caveat appears, and every answer stays byte-identical to the
/// fault-free session — the fallback path is a slower route to the same
/// bits, not a degraded method.
#[test]
fn refactor_fault_falls_back_without_descending_the_ladder() {
    let profile = ModelProfile::paper_models().remove(0);
    let queries = ["solve case14", "run the n-1 contingency analysis"];

    let baseline: Vec<String> = {
        let mut gm = GridMind::new(profile.clone());
        queries.iter().map(|q| gm.ask(q).text).collect()
    };

    let inj = FaultInjector::scripted(vec![FaultRule::new(
        "sparse.refactor",
        FaultKind::LuSingular,
        0,
        u64::MAX,
    )]);
    let guard = inj.install();
    let mut gm = GridMind::new(profile);
    let answers: Vec<String> = queries.iter().map(|q| gm.ask(q).text).collect();
    drop(guard);

    assert!(
        inj.injected_total() > 0,
        "no pattern-reuse refactorization was attacked — the Newton loop \
         stopped exercising the symbolic cache"
    );
    assert_eq!(
        gm.session
            .telemetry
            .counter_value("sparse.symbolic.fallback"),
        inj.injected_total(),
        "every injected refactorization failure must become exactly one \
         full re-analysis fallback"
    );
    assert_eq!(
        gm.session.telemetry.sum_prefix("recovery."),
        0,
        "the sparse-layer fallback leaked into the solver recovery ladder"
    );
    assert!(
        answers.iter().all(|t| !t.contains(CAVEAT_PREFIX)),
        "caveat appeared for a fault the sparse layer must absorb"
    );
    assert_eq!(answers, baseline, "refactor fallback changed an answer");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn disabled_harness_is_byte_invisible(
        tail in prop::collection::vec(prop::sample::select(query_pool()), 0..5)
    ) {
        // Every sequence opens with a solve so at least one injection
        // site is guaranteed to be consulted.
        let mut picks = vec!["solve case14"];
        picks.extend(tail);
        let mut profiles = ModelProfile::paper_models();
        prop_assert!(!profiles.is_empty());
        let profile = profiles.remove(0);
        let baseline = run_session(&profile, &picks, None);
        let disabled = FaultInjector::disabled();
        let with_harness = run_session(&profile, &picks, Some(&disabled));
        prop_assert_eq!(&baseline, &with_harness, "disabled harness changed an answer");
        prop_assert_eq!(disabled.injected_total(), 0, "disabled injector fired");
        prop_assert!(
            baseline.iter().all(|t| !t.contains(CAVEAT_PREFIX)),
            "caveat appeared on the fault-free path"
        );
        // The harness was really in the loop: solver-layer sites were
        // consulted (and declined) rather than bypassed.
        prop_assert!(
            disabled.hits_at("pf.base") + disabled.hits_at("cache.get")
                + disabled.hits_at("acopf.ipm") > 0,
            "no injection site was ever consulted"
        );
    }
}
