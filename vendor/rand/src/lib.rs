//! Offline, minimal drop-in for the `rand` 0.9 subset GridMind-RS
//! uses: `SmallRng`/`StdRng` seeded via `seed_from_u64`, and
//! `Rng::random_range` / `Rng::random` over the primitive ranges the
//! workspace samples. The generator is SplitMix64-seeded xoshiro256++,
//! which is more than enough statistical quality for synthetic-network
//! generation and simulated LLM latency.

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface.
pub trait RngCore {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next raw 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;

    /// Build from OS entropy. Offline stub: derives from the system
    /// clock, which is adequate for the non-reproducible call sites.
    fn from_os_rng() -> Self {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.subsec_nanos() as u64 ^ (d.as_secs() << 32))
            .unwrap_or(0x9E37_79B9_7F4A_7C15);
        Self::seed_from_u64(nanos)
    }
}

/// High-level sampling interface, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Sample uniformly from a range (`a..b` or `a..=b`).
    fn random_range<R>(&mut self, range: R) -> R::Output
    where
        R: SampleRange,
    {
        range.sample_from(self)
    }

    /// Sample a value of a type with a standard distribution
    /// (`f64`/`f32` in `[0, 1)`, full-width integers, fair bool).
    fn random<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Bernoulli sample with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types samplable by [`Rng::random`].
pub trait Standard: Sized {
    #[doc(hidden)]
    fn sample_standard<G: RngCore + ?Sized>(rng: &mut G) -> Self;
}

impl Standard for f64 {
    fn sample_standard<G: RngCore + ?Sized>(rng: &mut G) -> Self {
        // 53 mantissa bits -> [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<G: RngCore + ?Sized>(rng: &mut G) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample_standard<G: RngCore + ?Sized>(rng: &mut G) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample_standard<G: RngCore + ?Sized>(rng: &mut G) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<G: RngCore + ?Sized>(rng: &mut G) -> Self {
        rng.next_u32()
    }
}

/// Ranges samplable by [`Rng::random_range`]. The output is an
/// associated type (not a generic parameter as in real rand) so the
/// range argument alone pins the result type for inference.
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    #[doc(hidden)]
    fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> Self::Output;
}

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> f64 {
        assert!(self.start < self.end, "empty f64 range");
        let u = f64::sample_standard(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange for RangeInclusive<f64> {
    type Output = f64;
    fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> f64 {
        let (a, b) = (*self.start(), *self.end());
        assert!(a <= b, "empty f64 range");
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64);
        a + u * (b - a)
    }
}

impl SampleRange for Range<f32> {
    type Output = f32;
    fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> f32 {
        assert!(self.start < self.end, "empty f32 range");
        let u = f32::sample_standard(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange for RangeInclusive<f32> {
    type Output = f32;
    fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> f32 {
        let (a, b) = (*self.start(), *self.end());
        assert!(a <= b, "empty f32 range");
        let u = (rng.next_u32() >> 8) as f32 * (1.0 / ((1u32 << 24) - 1) as f32);
        a + u * (b - a)
    }
}

/// Lemire-style unbiased bounded integer sample in `[0, bound)`.
fn bounded_u64<G: RngCore + ?Sized>(rng: &mut G, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    // Rejection sampling on the top of the range keeps it unbiased.
    let zone = u64::MAX - (u64::MAX - bound + 1) % bound;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % bound;
        }
    }
}

macro_rules! sample_int_range {
    ($($t:ty => $wide:ty),* $(,)?) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "empty integer range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                let off = bounded_u64(rng, span);
                (self.start as $wide).wrapping_add(off as $wide) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> $t {
                let (a, b) = (*self.start(), *self.end());
                assert!(a <= b, "empty integer range");
                let span = (b as $wide).wrapping_sub(a as $wide) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                let off = bounded_u64(rng, span + 1);
                (a as $wide).wrapping_add(off as $wide) as $t
            }
        }
    )*};
}
sample_int_range! {
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64,
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
}

/// Generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — the same family the real `SmallRng` uses on
    /// 64-bit targets.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SmallRng {
        fn from_state(mut seed: u64) -> Self {
            // SplitMix64 expansion of the 64-bit seed, per the xoshiro
            // reference initialization.
            let mut next = || {
                seed = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = seed;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            SmallRng { s }
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            Self::from_state(seed)
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    /// The stub makes no cryptographic claims; `StdRng` aliases the
    /// same generator.
    pub type StdRng = SmallRng;
}

pub use rngs::SmallRng;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_in_range() {
        let mut a = rngs::SmallRng::seed_from_u64(42);
        let mut b = rngs::SmallRng::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut r = rngs::SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let f = r.random_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let i = r.random_range(-3i32..=2);
            assert!((-3..=2).contains(&i));
            let u = r.random_range(0usize..5);
            assert!(u < 5);
        }
    }

    #[test]
    fn covers_full_span() {
        let mut r = rngs::SmallRng::seed_from_u64(1);
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[r.random_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
