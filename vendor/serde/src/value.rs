//! The JSON value tree shared by the vendored `serde`/`serde_json`.

use std::collections::BTreeMap;
use std::fmt;

/// Object representation. The real `serde_json::Map` is a newtype; a
/// `BTreeMap` alias covers every call pattern the workspace uses and
/// keeps key order deterministic (matching serde_json's default,
/// non-`preserve_order` build).
pub type Map<K, V> = BTreeMap<K, V>;

/// A JSON number: unsigned, signed, or floating point, normalized the
/// same way serde_json normalizes (non-negative integers are unsigned).
#[derive(Clone, Copy, Debug)]
pub struct Number {
    n: N,
}

#[derive(Clone, Copy, Debug)]
enum N {
    PosInt(u64),
    NegInt(i64),
    Float(f64),
}

impl Number {
    /// The value as an `f64` (always possible, possibly lossy).
    pub fn as_f64(&self) -> Option<f64> {
        Some(match self.n {
            N::PosInt(v) => v as f64,
            N::NegInt(v) => v as f64,
            N::Float(v) => v,
        })
    }

    /// The value as an `i64`, if integral and in range.
    pub fn as_i64(&self) -> Option<i64> {
        match self.n {
            N::PosInt(v) => i64::try_from(v).ok(),
            N::NegInt(v) => Some(v),
            N::Float(_) => None,
        }
    }

    /// The value as a `u64`, if a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self.n {
            N::PosInt(v) => Some(v),
            N::NegInt(_) | N::Float(_) => None,
        }
    }

    /// Whether this number is stored as a float.
    pub fn is_f64(&self) -> bool {
        matches!(self.n, N::Float(_))
    }

    /// Build from a finite `f64`; `None` for NaN/inf (not JSON).
    pub fn from_f64(f: f64) -> Option<Self> {
        f.is_finite().then_some(Number { n: N::Float(f) })
    }
}

impl From<u64> for Number {
    fn from(v: u64) -> Self {
        Number { n: N::PosInt(v) }
    }
}

impl From<i64> for Number {
    fn from(v: i64) -> Self {
        if v >= 0 {
            Number {
                n: N::PosInt(v as u64),
            }
        } else {
            Number { n: N::NegInt(v) }
        }
    }
}

impl From<f64> for Number {
    fn from(v: f64) -> Self {
        Number { n: N::Float(v) }
    }
}

impl PartialEq for Number {
    fn eq(&self, other: &Self) -> bool {
        match (self.n, other.n) {
            (N::PosInt(a), N::PosInt(b)) => a == b,
            (N::NegInt(a), N::NegInt(b)) => a == b,
            (N::Float(a), N::Float(b)) => a == b,
            _ => false,
        }
    }
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.n {
            N::PosInt(v) => write!(f, "{v}"),
            N::NegInt(v) => write!(f, "{v}"),
            N::Float(v) => {
                if v == v.trunc() && v.abs() < 1e15 {
                    // Match serde_json: integral floats keep a ".0".
                    write!(f, "{v:.1}")
                } else {
                    write!(f, "{v}")
                }
            }
        }
    }
}

/// A JSON value.
#[derive(Clone, Debug, PartialEq, Default)]
pub enum Value {
    /// `null`
    #[default]
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Number(Number),
    /// A string.
    String(String),
    /// An ordered list.
    Array(Vec<Value>),
    /// A key/value object with deterministic (sorted) key order.
    Object(Map<String, Value>),
}

impl Value {
    /// Human-readable kind name for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "boolean",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    /// Object-field or array-element lookup (mirrors `serde_json`).
    pub fn get<I: Index>(&self, index: I) -> Option<&Value> {
        index.index_into(self)
    }

    /// Mutable lookup.
    pub fn get_mut<I: Index>(&mut self, index: I) -> Option<&mut Value> {
        index.index_into_mut(self)
    }

    /// `Some(&str)` if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// `Some(f64)` if this is any number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => n.as_f64(),
            _ => None,
        }
    }

    /// `Some(i64)` if this is an integral number in `i64` range.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// `Some(u64)` if this is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// `Some(bool)` if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// `Some(&Vec)` if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Mutable array access.
    pub fn as_array_mut(&mut self) -> Option<&mut Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// `Some(&Map)` if this is an object.
    pub fn as_object(&self) -> Option<&Map<String, Value>> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Mutable object access.
    pub fn as_object_mut(&mut self) -> Option<&mut Map<String, Value>> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Whether this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Whether this is an object.
    pub fn is_object(&self) -> bool {
        matches!(self, Value::Object(_))
    }

    /// Whether this is an array.
    pub fn is_array(&self) -> bool {
        matches!(self, Value::Array(_))
    }

    /// Whether this is a string.
    pub fn is_string(&self) -> bool {
        matches!(self, Value::String(_))
    }

    /// Whether this is a number.
    pub fn is_number(&self) -> bool {
        matches!(self, Value::Number(_))
    }
}

/// Index abstraction so `Value::get` and `value[...]` accept both
/// string keys and array positions, as in `serde_json`.
pub trait Index {
    #[doc(hidden)]
    fn index_into<'v>(&self, v: &'v Value) -> Option<&'v Value>;
    #[doc(hidden)]
    fn index_into_mut<'v>(&self, v: &'v mut Value) -> Option<&'v mut Value>;
    #[doc(hidden)]
    fn index_or_insert<'v>(&self, v: &'v mut Value) -> &'v mut Value;
}

impl Index for str {
    fn index_into<'v>(&self, v: &'v Value) -> Option<&'v Value> {
        v.as_object().and_then(|m| m.get(self))
    }
    fn index_into_mut<'v>(&self, v: &'v mut Value) -> Option<&'v mut Value> {
        v.as_object_mut().and_then(|m| m.get_mut(self))
    }
    fn index_or_insert<'v>(&self, v: &'v mut Value) -> &'v mut Value {
        // serde_json semantics: writing through a key turns null into
        // an object and inserts missing keys.
        if v.is_null() {
            *v = Value::Object(Map::new());
        }
        match v {
            Value::Object(m) => m.entry(self.to_string()).or_insert(Value::Null),
            other => panic!("cannot index {} with a string key", other.kind()),
        }
    }
}

impl Index for String {
    fn index_into<'v>(&self, v: &'v Value) -> Option<&'v Value> {
        self.as_str().index_into(v)
    }
    fn index_into_mut<'v>(&self, v: &'v mut Value) -> Option<&'v mut Value> {
        self.as_str().index_into_mut(v)
    }
    fn index_or_insert<'v>(&self, v: &'v mut Value) -> &'v mut Value {
        self.as_str().index_or_insert(v)
    }
}

impl Index for usize {
    fn index_into<'v>(&self, v: &'v Value) -> Option<&'v Value> {
        v.as_array().and_then(|a| a.get(*self))
    }
    fn index_into_mut<'v>(&self, v: &'v mut Value) -> Option<&'v mut Value> {
        v.as_array_mut().and_then(|a| a.get_mut(*self))
    }
    fn index_or_insert<'v>(&self, v: &'v mut Value) -> &'v mut Value {
        match v {
            Value::Array(a) => {
                let len = a.len();
                a.get_mut(*self)
                    .unwrap_or_else(|| panic!("index {self} out of bounds (len {len})"))
            }
            other => panic!("cannot index {} with a usize", other.kind()),
        }
    }
}

impl<T: Index + ?Sized> Index for &T {
    fn index_into<'v>(&self, v: &'v Value) -> Option<&'v Value> {
        (**self).index_into(v)
    }
    fn index_into_mut<'v>(&self, v: &'v mut Value) -> Option<&'v mut Value> {
        (**self).index_into_mut(v)
    }
    fn index_or_insert<'v>(&self, v: &'v mut Value) -> &'v mut Value {
        (**self).index_or_insert(v)
    }
}

const NULL: Value = Value::Null;

impl<I: Index> std::ops::Index<I> for Value {
    type Output = Value;
    fn index(&self, index: I) -> &Value {
        index.index_into(self).unwrap_or(&NULL)
    }
}

impl<I: Index> std::ops::IndexMut<I> for Value {
    fn index_mut(&mut self, index: I) -> &mut Value {
        index.index_or_insert(self)
    }
}

// Display renders compact JSON, exactly like serde_json's.
impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Number(n) => write!(f, "{n}"),
            Value::String(s) => write_json_string(f, s),
            Value::Array(a) => {
                f.write_str("[")?;
                for (i, v) in a.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            Value::Object(m) => {
                f.write_str("{")?;
                for (i, (k, v)) in m.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_json_string(f, k)?;
                    write!(f, ":{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

/// Write a JSON-escaped string literal.
pub(crate) fn write_json_string(f: &mut impl fmt::Write, s: &str) -> fmt::Result {
    f.write_char('"')?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => f.write_char(c)?,
        }
    }
    f.write_char('"')
}

macro_rules! value_from_int {
    ($($t:ty)*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Self {
                Value::Number(Number::from(i64::from(v)))
            }
        }
    )*};
}
value_from_int!(i8 i16 i32 i64);

macro_rules! value_from_uint {
    ($($t:ty)*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Self {
                Value::Number(Number::from(u64::from(v)))
            }
        }
    )*};
}
value_from_uint!(u8 u16 u32 u64);

impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::Number(Number::from(v as u64))
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        match Number::from_f64(v) {
            Some(n) => Value::Number(n),
            None => Value::Null,
        }
    }
}

impl From<f32> for Value {
    fn from(v: f32) -> Self {
        Value::from(f64::from(v))
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::String(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::String(v)
    }
}

impl From<Vec<Value>> for Value {
    fn from(v: Vec<Value>) -> Self {
        Value::Array(v)
    }
}

impl From<Map<String, Value>> for Value {
    fn from(v: Map<String, Value>) -> Self {
        Value::Object(v)
    }
}

impl PartialEq<f64> for Value {
    fn eq(&self, other: &f64) -> bool {
        self.as_f64() == Some(*other)
    }
}

impl PartialEq<i64> for Value {
    fn eq(&self, other: &i64) -> bool {
        self.as_i64() == Some(*other)
    }
}

impl PartialEq<u64> for Value {
    fn eq(&self, other: &u64) -> bool {
        self.as_u64() == Some(*other)
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<String> for Value {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == Some(other.as_str())
    }
}

impl Value {
    /// Whether this is a boolean (serde_json's `is_boolean`).
    pub fn is_boolean(&self) -> bool {
        matches!(self, Value::Bool(_))
    }

    /// Whether this is an integer representable as `i64`.
    pub fn is_i64(&self) -> bool {
        self.as_i64().is_some()
    }

    /// Whether this is a non-negative integer.
    pub fn is_u64(&self) -> bool {
        self.as_u64().is_some()
    }

    /// Whether this is any number (serde_json's `is_f64` is stricter,
    /// but every number in this stub is convertible to f64).
    pub fn is_f64(&self) -> bool {
        matches!(self, Value::Number(n) if n.is_f64())
    }
}
