//! Offline, minimal drop-in replacement for the subset of `serde` that
//! GridMind-RS uses.
//!
//! The real `serde` models serialization through visitor-based
//! `Serializer`/`Deserializer` traits. This container has no network
//! access to crates.io, so we vendor a much smaller data model: every
//! `Serialize` type lowers itself directly to a JSON [`Value`] tree and
//! every `Deserialize` type lifts itself back out of one. The public
//! surface (`serde::{Serialize, Deserialize}` derive + traits,
//! `serde_json::{Value, json!, to_string, from_str, ...}`) matches what
//! the workspace actually calls, so swapping the real crates back in is
//! a manifest-only change.

pub use serde_derive::{Deserialize, Serialize};

mod value;

pub use value::{Map, Number, Value};

/// Serialization/deserialization error: a rendered message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Build an error from any displayable message.
    pub fn msg<T: std::fmt::Display>(msg: T) -> Self {
        Error {
            msg: msg.to_string(),
        }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// A type that can lower itself to a JSON [`Value`].
pub trait Serialize {
    /// Lower `self` to a JSON value tree.
    fn serialize_value(&self) -> Value;
}

/// A type that can lift itself out of a JSON [`Value`].
pub trait Deserialize: Sized {
    /// Lift `Self` out of a JSON value tree.
    fn deserialize_value(value: &Value) -> Result<Self, Error>;
}

/// Mirror of `serde::de` for code that names the module path.
pub mod de {
    pub use crate::{Deserialize, Error};

    /// In real serde this distinguishes borrowed from owned
    /// deserialization; our simplified model is always owned.
    pub trait DeserializeOwned: Deserialize {}
    impl<T: Deserialize> DeserializeOwned for T {}
}

/// Mirror of `serde::ser` for code that names the module path.
pub mod ser {
    pub use crate::{Error, Serialize};
}

// ---------------------------------------------------------------------
// Serialize impls for primitives and std containers
// ---------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_value(&self) -> Value {
        (**self).serialize_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize_value(&self) -> Value {
        (**self).serialize_value()
    }
}

impl Serialize for bool {
    fn serialize_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for String {
    fn serialize_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Serialize for str {
    fn serialize_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for char {
    fn serialize_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

macro_rules! serialize_signed {
    ($($t:ty)*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                Value::Number(Number::from(i64::from(*self)))
            }
        }
    )*};
}
serialize_signed!(i8 i16 i32 i64);

macro_rules! serialize_unsigned {
    ($($t:ty)*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                Value::Number(Number::from(u64::from(*self)))
            }
        }
    )*};
}
serialize_unsigned!(u8 u16 u32 u64);

impl Serialize for usize {
    fn serialize_value(&self) -> Value {
        Value::Number(Number::from(*self as u64))
    }
}

impl Serialize for isize {
    fn serialize_value(&self) -> Value {
        Value::Number(Number::from(*self as i64))
    }
}

impl Serialize for f32 {
    fn serialize_value(&self) -> Value {
        f64::from(*self).serialize_value()
    }
}

impl Serialize for f64 {
    fn serialize_value(&self) -> Value {
        // JSON has no NaN/inf; real serde_json lowers them to null.
        if self.is_finite() {
            Value::Number(Number::from(*self))
        } else {
            Value::Null
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_value(&self) -> Value {
        match self {
            Some(v) => v.serialize_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

macro_rules! serialize_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn serialize_value(&self) -> Value {
                Value::Array(vec![$(self.$n.serialize_value()),+])
            }
        }
    )*};
}
serialize_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

impl<V: Serialize> Serialize for std::collections::BTreeMap<String, V> {
    fn serialize_value(&self) -> Value {
        let mut m = Map::new();
        for (k, v) in self {
            m.insert(k.clone(), v.serialize_value());
        }
        Value::Object(m)
    }
}

impl<V: Serialize, S> Serialize for std::collections::HashMap<String, V, S> {
    fn serialize_value(&self) -> Value {
        let mut m = Map::new();
        for (k, v) in self {
            m.insert(k.clone(), v.serialize_value());
        }
        Value::Object(m)
    }
}

impl Serialize for Value {
    fn serialize_value(&self) -> Value {
        self.clone()
    }
}

impl Serialize for () {
    fn serialize_value(&self) -> Value {
        Value::Null
    }
}

// ---------------------------------------------------------------------
// Deserialize impls for primitives and std containers
// ---------------------------------------------------------------------

fn type_err(expected: &str, got: &Value) -> Error {
    Error::msg(format!("expected {expected}, got {}", got.kind()))
}

impl Deserialize for bool {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        value.as_bool().ok_or_else(|| type_err("bool", value))
    }
}

impl Deserialize for String {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        value
            .as_str()
            .map(str::to_string)
            .ok_or_else(|| type_err("string", value))
    }
}

impl Deserialize for char {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        let s = value.as_str().ok_or_else(|| type_err("char", value))?;
        let mut it = s.chars();
        match (it.next(), it.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(type_err("single-char string", value)),
        }
    }
}

macro_rules! deserialize_signed {
    ($($t:ty)*) => {$(
        impl Deserialize for $t {
            fn deserialize_value(value: &Value) -> Result<Self, Error> {
                let n = value.as_i64().ok_or_else(|| type_err("integer", value))?;
                <$t>::try_from(n).map_err(|_| Error::msg("integer out of range"))
            }
        }
    )*};
}
deserialize_signed!(i8 i16 i32 i64 isize);

macro_rules! deserialize_unsigned {
    ($($t:ty)*) => {$(
        impl Deserialize for $t {
            fn deserialize_value(value: &Value) -> Result<Self, Error> {
                let n = value.as_u64().ok_or_else(|| type_err("unsigned integer", value))?;
                <$t>::try_from(n).map_err(|_| Error::msg("integer out of range"))
            }
        }
    )*};
}
deserialize_unsigned!(u8 u16 u32 u64 usize);

impl Deserialize for f64 {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        match value {
            // Round-trip tolerance: NaN/inf serialize to null.
            Value::Null => Ok(f64::NAN),
            _ => value.as_f64().ok_or_else(|| type_err("number", value)),
        }
    }
}

impl Deserialize for f32 {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        f64::deserialize_value(value).map(|v| v as f32)
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::deserialize_value(other).map(Some),
        }
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        let arr = value.as_array().ok_or_else(|| type_err("array", value))?;
        arr.iter().map(T::deserialize_value).collect()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        T::deserialize_value(value).map(Box::new)
    }
}

macro_rules! deserialize_tuple {
    ($(($len:literal, $($n:tt $t:ident),+))*) => {$(
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn deserialize_value(value: &Value) -> Result<Self, Error> {
                let arr = value.as_array().ok_or_else(|| type_err("array", value))?;
                if arr.len() != $len {
                    return Err(Error::msg(format!(
                        "expected array of length {}, got {}", $len, arr.len()
                    )));
                }
                Ok(($($t::deserialize_value(&arr[$n])?,)+))
            }
        }
    )*};
}
deserialize_tuple! {
    (1, 0 A)
    (2, 0 A, 1 B)
    (3, 0 A, 1 B, 2 C)
    (4, 0 A, 1 B, 2 C, 3 D)
}

impl<V: Deserialize> Deserialize for std::collections::BTreeMap<String, V> {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        let obj = value.as_object().ok_or_else(|| type_err("object", value))?;
        obj.iter()
            .map(|(k, v)| V::deserialize_value(v).map(|v| (k.clone(), v)))
            .collect()
    }
}

impl<V: Deserialize> Deserialize for std::collections::HashMap<String, V> {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        let obj = value.as_object().ok_or_else(|| type_err("object", value))?;
        obj.iter()
            .map(|(k, v)| V::deserialize_value(v).map(|v| (k.clone(), v)))
            .collect()
    }
}

impl Deserialize for Value {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

impl Deserialize for () {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(()),
            other => Err(type_err("null", other)),
        }
    }
}
