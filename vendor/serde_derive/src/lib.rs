//! Offline `#[derive(Serialize, Deserialize)]` for the vendored serde
//! stub. Parses the item with the bare `proc_macro` API (no `syn` —
//! crates.io is unreachable in this container) and emits impls of the
//! stub's value-tree traits.
//!
//! Supported shapes — everything the GridMind-RS workspace derives:
//! named/tuple/unit structs (including simple generics like
//! `Stamped<T>`), and enums with unit, newtype, tuple, and struct
//! variants, serialized externally-tagged exactly like real serde.
//! Field attributes: `#[serde(default)]` and `#[serde(default = "path")]`.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Ser)
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::De)
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Ser,
    De,
}

struct Field {
    name: String, // identifier, or tuple index rendered as text
    default: FieldDefault,
}

enum FieldDefault {
    None,
    Trait,        // #[serde(default)]
    Path(String), // #[serde(default = "path")]
}

struct Variant {
    name: String,
    shape: VariantShape,
}

enum VariantShape {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

enum Item {
    Struct { fields: StructShape },
    Enum { variants: Vec<Variant> },
}

enum StructShape {
    Named(Vec<Field>),
    Tuple(usize),
    Unit,
}

struct Parsed {
    name: String,
    // (lifetimes, type params with their original bounds text)
    lifetimes: Vec<String>,
    type_params: Vec<(String, String)>,
    item: Item,
}

fn expand(input: TokenStream, mode: Mode) -> TokenStream {
    let parsed = match parse_item(input) {
        Ok(p) => p,
        Err(msg) => {
            return format!("compile_error!({msg:?});").parse().unwrap();
        }
    };
    let code = match mode {
        Mode::Ser => gen_serialize(&parsed),
        Mode::De => gen_deserialize(&parsed),
    };
    code.parse().unwrap()
}

// ---------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------

struct Cursor {
    toks: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(ts: TokenStream) -> Self {
        Cursor {
            toks: ts.into_iter().collect(),
            pos: 0,
        }
    }
    fn peek(&self) -> Option<&TokenTree> {
        self.toks.get(self.pos)
    }
    fn next(&mut self) -> Option<TokenTree> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }
    fn at_end(&self) -> bool {
        self.pos >= self.toks.len()
    }
    fn is_punct(&self, ch: char) -> bool {
        matches!(self.peek(), Some(TokenTree::Punct(p)) if p.as_char() == ch)
    }
    fn is_ident(&self, s: &str) -> bool {
        matches!(self.peek(), Some(TokenTree::Ident(i)) if i.to_string() == s)
    }
    /// Consume one `#[...]` attribute if present; returns its bracket
    /// body when it is a `#[serde(...)]` attribute.
    fn eat_attr(&mut self) -> Option<Option<TokenStream>> {
        if !self.is_punct('#') {
            return None;
        }
        self.next(); // '#'
                     // Inner attributes (`#![...]`) do not occur on fields/items here.
        match self.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {
                let mut inner = Cursor::new(g.stream());
                if inner.is_ident("serde") {
                    inner.next();
                    if let Some(TokenTree::Group(args)) = inner.next() {
                        return Some(Some(args.stream()));
                    }
                }
                Some(None)
            }
            _ => Some(None),
        }
    }
    /// Skip all attributes, returning the last `#[serde(...)]` payload seen.
    fn skip_attrs(&mut self) -> Option<TokenStream> {
        let mut serde_args = None;
        while let Some(found) = self.eat_attr() {
            if let Some(args) = found {
                serde_args = Some(args);
            }
        }
        serde_args
    }
    fn skip_visibility(&mut self) {
        if self.is_ident("pub") {
            self.next();
            if let Some(TokenTree::Group(g)) = self.peek() {
                if g.delimiter() == Delimiter::Parenthesis {
                    self.next();
                }
            }
        }
    }
}

fn parse_item(input: TokenStream) -> Result<Parsed, String> {
    let mut c = Cursor::new(input);
    c.skip_attrs();
    c.skip_visibility();

    let kind = match c.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => return Err(format!("expected struct/enum, got {other:?}")),
    };
    if kind != "struct" && kind != "enum" {
        return Err(format!(
            "derive target must be a struct or enum, got `{kind}`"
        ));
    }
    let name = match c.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => return Err(format!("expected type name, got {other:?}")),
    };

    let (lifetimes, type_params) = parse_generics(&mut c)?;

    let item = if kind == "struct" {
        match c.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item::Struct {
                fields: StructShape::Named(parse_named_fields(g.stream())?),
            },
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => Item::Struct {
                fields: StructShape::Tuple(count_tuple_fields(g.stream())),
            },
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Item::Struct {
                fields: StructShape::Unit,
            },
            other => return Err(format!("unsupported struct body: {other:?}")),
        }
    } else {
        match c.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item::Enum {
                variants: parse_variants(g.stream())?,
            },
            other => return Err(format!("expected enum body, got {other:?}")),
        }
    };

    Ok(Parsed {
        name,
        lifetimes,
        type_params,
        item,
    })
}

/// Parse an optional `<...>` generics list into lifetimes and
/// `(param, original-bounds-text)` pairs.
#[allow(clippy::type_complexity)]
fn parse_generics(c: &mut Cursor) -> Result<(Vec<String>, Vec<(String, String)>), String> {
    let mut lifetimes = Vec::new();
    let mut type_params = Vec::new();
    if !c.is_punct('<') {
        return Ok((lifetimes, type_params));
    }
    c.next(); // '<'
    let mut depth = 1usize;
    // Split the generic arguments at top-level commas.
    let mut current: Vec<TokenTree> = Vec::new();
    let mut params: Vec<Vec<TokenTree>> = Vec::new();
    while depth > 0 {
        let t = c
            .next()
            .ok_or_else(|| "unterminated generics".to_string())?;
        match &t {
            TokenTree::Punct(p) if p.as_char() == '<' => {
                depth += 1;
                current.push(t);
            }
            TokenTree::Punct(p) if p.as_char() == '>' => {
                depth -= 1;
                if depth > 0 {
                    current.push(t);
                }
            }
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 1 => {
                params.push(std::mem::take(&mut current));
            }
            _ => current.push(t),
        }
    }
    if !current.is_empty() {
        params.push(current);
    }
    for p in params {
        let text: String = p
            .iter()
            .map(|t| t.to_string())
            .collect::<Vec<_>>()
            .join(" ");
        if text.starts_with('\'')
            || matches!(p.first(), Some(TokenTree::Punct(q)) if q.as_char() == '\'')
        {
            // A lifetime parameter like `'a` (tokens: Punct('\'') Ident).
            let ident = p
                .iter()
                .find_map(|t| match t {
                    TokenTree::Ident(i) => Some(i.to_string()),
                    _ => None,
                })
                .ok_or("malformed lifetime parameter")?;
            lifetimes.push(format!("'{ident}"));
        } else {
            let ident = match p.first() {
                Some(TokenTree::Ident(i)) => i.to_string(),
                other => return Err(format!("unsupported generic parameter: {other:?}")),
            };
            let bounds = match p
                .iter()
                .position(|t| matches!(t, TokenTree::Punct(q) if q.as_char() == ':'))
            {
                Some(i) => p[i + 1..]
                    .iter()
                    .map(|t| t.to_string())
                    .collect::<Vec<_>>()
                    .join(" "),
                None => String::new(),
            };
            type_params.push((ident, bounds));
        }
    }
    Ok((lifetimes, type_params))
}

fn parse_serde_args(args: TokenStream) -> Result<FieldDefault, String> {
    let mut c = Cursor::new(args);
    let mut out = FieldDefault::None;
    while !c.at_end() {
        match c.next() {
            Some(TokenTree::Ident(i)) if i.to_string() == "default" => {
                if c.is_punct('=') {
                    c.next();
                    match c.next() {
                        Some(TokenTree::Literal(l)) => {
                            let s = l.to_string();
                            let path = s.trim_matches('"').to_string();
                            out = FieldDefault::Path(path);
                        }
                        other => {
                            return Err(format!(
                                "expected path string after default =, got {other:?}"
                            ))
                        }
                    }
                } else {
                    out = FieldDefault::Trait;
                }
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => {}
            other => {
                return Err(format!(
                    "unsupported #[serde(...)] attribute near {other:?}; the vendored derive \
                     only supports `default` and `default = \"path\"`"
                ))
            }
        }
    }
    Ok(out)
}

fn parse_named_fields(body: TokenStream) -> Result<Vec<Field>, String> {
    let mut c = Cursor::new(body);
    let mut fields = Vec::new();
    while !c.at_end() {
        let serde_args = c.skip_attrs();
        if c.at_end() {
            break;
        }
        c.skip_visibility();
        let name = match c.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            other => return Err(format!("expected field name, got {other:?}")),
        };
        match c.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => return Err(format!("expected `:` after field `{name}`, got {other:?}")),
        }
        skip_type(&mut c);
        let default = match serde_args {
            Some(args) => parse_serde_args(args)?,
            None => FieldDefault::None,
        };
        fields.push(Field { name, default });
    }
    Ok(fields)
}

/// Consume a type, stopping at a top-level `,` (which is also consumed)
/// or end of stream. Tracks `<`/`>` nesting; grouped delimiters arrive
/// as single `Group` tokens so only angle brackets need counting.
fn skip_type(c: &mut Cursor) {
    let mut angle = 0usize;
    while let Some(t) = c.peek() {
        match t {
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                c.next();
                return;
            }
            TokenTree::Punct(p) if p.as_char() == '<' => {
                angle += 1;
                c.next();
            }
            TokenTree::Punct(p) if p.as_char() == '>' => {
                angle = angle.saturating_sub(1);
                c.next();
            }
            _ => {
                c.next();
            }
        }
    }
}

fn count_tuple_fields(body: TokenStream) -> usize {
    let mut c = Cursor::new(body);
    let mut n = 0usize;
    while !c.at_end() {
        c.skip_attrs();
        if c.at_end() {
            break;
        }
        c.skip_visibility();
        skip_type(&mut c);
        n += 1;
    }
    n
}

fn parse_variants(body: TokenStream) -> Result<Vec<Variant>, String> {
    let mut c = Cursor::new(body);
    let mut variants = Vec::new();
    while !c.at_end() {
        c.skip_attrs();
        if c.at_end() {
            break;
        }
        let name = match c.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            other => return Err(format!("expected variant name, got {other:?}")),
        };
        let shape = match c.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                c.next();
                VariantShape::Tuple(n)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream())?;
                c.next();
                VariantShape::Struct(fields)
            }
            _ => VariantShape::Unit,
        };
        // Skip an optional discriminant (`= expr`) and the trailing comma.
        while let Some(t) = c.peek() {
            if matches!(t, TokenTree::Punct(p) if p.as_char() == ',') {
                c.next();
                break;
            }
            c.next();
        }
        variants.push(Variant { name, shape });
    }
    Ok(variants)
}

// ---------------------------------------------------------------------
// Codegen
// ---------------------------------------------------------------------

impl Parsed {
    /// `<'a, T: Bounds + ::serde::Serialize>` for the impl header, and
    /// `<'a, T>` for the type, plus the bare name.
    fn impl_header(&self, trait_bound: &str) -> (String, String) {
        if self.lifetimes.is_empty() && self.type_params.is_empty() {
            return (String::new(), String::new());
        }
        let mut impl_params: Vec<String> = self.lifetimes.clone();
        let mut type_args: Vec<String> = self.lifetimes.clone();
        for (p, bounds) in &self.type_params {
            if bounds.is_empty() {
                impl_params.push(format!("{p}: {trait_bound}"));
            } else {
                impl_params.push(format!("{p}: {bounds} + {trait_bound}"));
            }
            type_args.push(p.clone());
        }
        (
            format!("<{}>", impl_params.join(", ")),
            format!("<{}>", type_args.join(", ")),
        )
    }
}

fn gen_serialize(p: &Parsed) -> String {
    let (impl_generics, ty_generics) = p.impl_header("::serde::Serialize");
    let name = &p.name;
    let body = match &p.item {
        Item::Struct { fields } => match fields {
            StructShape::Named(fs) => {
                let mut s = String::from("let mut __m = ::serde::Map::new();\n");
                for f in fs {
                    s.push_str(&format!(
                        "__m.insert(::std::string::String::from({n:?}), \
                         ::serde::Serialize::serialize_value(&self.{n}));\n",
                        n = f.name
                    ));
                }
                s.push_str("::serde::Value::Object(__m)");
                s
            }
            StructShape::Tuple(1) => {
                // Newtype structs serialize transparently, like serde.
                "::serde::Serialize::serialize_value(&self.0)".to_string()
            }
            StructShape::Tuple(n) => {
                let items: Vec<String> = (0..*n)
                    .map(|i| format!("::serde::Serialize::serialize_value(&self.{i})"))
                    .collect();
                format!("::serde::Value::Array(vec![{}])", items.join(", "))
            }
            StructShape::Unit => "::serde::Value::Null".to_string(),
        },
        Item::Enum { variants } => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.shape {
                    VariantShape::Unit => {
                        arms.push_str(&format!(
                            "{name}::{vn} => ::serde::Value::String(\
                             ::std::string::String::from({vn:?})),\n"
                        ));
                    }
                    VariantShape::Tuple(1) => {
                        arms.push_str(&format!(
                            "{name}::{vn}(__f0) => {{\n\
                             let mut __m = ::serde::Map::new();\n\
                             __m.insert(::std::string::String::from({vn:?}), \
                             ::serde::Serialize::serialize_value(__f0));\n\
                             ::serde::Value::Object(__m)\n}}\n"
                        ));
                    }
                    VariantShape::Tuple(n) => {
                        let binders: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let items: Vec<String> = binders
                            .iter()
                            .map(|b| format!("::serde::Serialize::serialize_value({b})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vn}({bl}) => {{\n\
                             let mut __m = ::serde::Map::new();\n\
                             __m.insert(::std::string::String::from({vn:?}), \
                             ::serde::Value::Array(vec![{items}]));\n\
                             ::serde::Value::Object(__m)\n}}\n",
                            bl = binders.join(", "),
                            items = items.join(", ")
                        ));
                    }
                    VariantShape::Struct(fs) => {
                        let binders: Vec<String> = fs.iter().map(|f| f.name.clone()).collect();
                        let mut inner = String::from("let mut __inner = ::serde::Map::new();\n");
                        for f in fs {
                            inner.push_str(&format!(
                                "__inner.insert(::std::string::String::from({n:?}), \
                                 ::serde::Serialize::serialize_value({n}));\n",
                                n = f.name
                            ));
                        }
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {bl} }} => {{\n{inner}\
                             let mut __m = ::serde::Map::new();\n\
                             __m.insert(::std::string::String::from({vn:?}), \
                             ::serde::Value::Object(__inner));\n\
                             ::serde::Value::Object(__m)\n}}\n",
                            bl = binders.join(", ")
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl{impl_generics} ::serde::Serialize for {name}{ty_generics} {{\n\
         fn serialize_value(&self) -> ::serde::Value {{\n{body}\n}}\n}}\n"
    )
}

fn field_expr(owner: &str, f: &Field) -> String {
    let n = &f.name;
    let missing = match &f.default {
        FieldDefault::None => format!(
            "return ::std::result::Result::Err(::serde::Error::msg(\
             format!(\"missing field `{n}` in {owner}\")))"
        ),
        FieldDefault::Trait => "::std::default::Default::default()".to_string(),
        FieldDefault::Path(p) => format!("{p}()"),
    };
    format!(
        "{n}: match __obj.get({n:?}) {{\n\
         ::std::option::Option::Some(__v) => ::serde::Deserialize::deserialize_value(__v)?,\n\
         ::std::option::Option::None => {missing},\n}},\n"
    )
}

fn gen_deserialize(p: &Parsed) -> String {
    let (impl_generics, ty_generics) = p.impl_header("::serde::Deserialize");
    let name = &p.name;
    let body = match &p.item {
        Item::Struct { fields } => match fields {
            StructShape::Named(fs) => {
                let mut s = format!(
                    "let __obj = __value.as_object().ok_or_else(|| \
                     ::serde::Error::msg(\"expected object for {name}\"))?;\n\
                     ::std::result::Result::Ok({name} {{\n"
                );
                for f in fs {
                    s.push_str(&field_expr(name, f));
                }
                s.push_str("})");
                s
            }
            StructShape::Tuple(1) => format!(
                "::std::result::Result::Ok({name}(\
                 ::serde::Deserialize::deserialize_value(__value)?))"
            ),
            StructShape::Tuple(n) => {
                let mut s = format!(
                    "let __arr = __value.as_array().ok_or_else(|| \
                     ::serde::Error::msg(\"expected array for {name}\"))?;\n\
                     if __arr.len() != {n} {{ return ::std::result::Result::Err(\
                     ::serde::Error::msg(\"wrong tuple arity for {name}\")); }}\n\
                     ::std::result::Result::Ok({name}(\n"
                );
                for i in 0..*n {
                    s.push_str(&format!(
                        "::serde::Deserialize::deserialize_value(&__arr[{i}])?,\n"
                    ));
                }
                s.push_str("))");
                s
            }
            StructShape::Unit => format!("::std::result::Result::Ok({name})"),
        },
        Item::Enum { variants } => {
            let mut unit_arms = String::new();
            let mut payload_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.shape {
                    VariantShape::Unit => {
                        unit_arms.push_str(&format!(
                            "{vn:?} => return ::std::result::Result::Ok({name}::{vn}),\n"
                        ));
                        // A unit variant can also appear externally tagged
                        // with a null payload.
                        payload_arms.push_str(&format!(
                            "{vn:?} => ::std::result::Result::Ok({name}::{vn}),\n"
                        ));
                    }
                    VariantShape::Tuple(1) => {
                        payload_arms.push_str(&format!(
                            "{vn:?} => ::std::result::Result::Ok({name}::{vn}(\
                             ::serde::Deserialize::deserialize_value(__payload)?)),\n"
                        ));
                    }
                    VariantShape::Tuple(n) => {
                        let mut items = String::new();
                        for i in 0..*n {
                            items.push_str(&format!(
                                "::serde::Deserialize::deserialize_value(&__arr[{i}])?,\n"
                            ));
                        }
                        payload_arms.push_str(&format!(
                            "{vn:?} => {{\n\
                             let __arr = __payload.as_array().ok_or_else(|| \
                             ::serde::Error::msg(\"expected array payload for {name}::{vn}\"))?;\n\
                             if __arr.len() != {n} {{ return ::std::result::Result::Err(\
                             ::serde::Error::msg(\"wrong arity for {name}::{vn}\")); }}\n\
                             ::std::result::Result::Ok({name}::{vn}({items}))\n}}\n"
                        ));
                    }
                    VariantShape::Struct(fs) => {
                        let owner = format!("{name}::{vn}");
                        let mut inner = format!(
                            "{vn:?} => {{\n\
                             let __obj = __payload.as_object().ok_or_else(|| \
                             ::serde::Error::msg(\"expected object payload for {owner}\"))?;\n\
                             ::std::result::Result::Ok({name}::{vn} {{\n"
                        );
                        for f in fs {
                            inner.push_str(&field_expr(&owner, f));
                        }
                        inner.push_str("})\n}\n");
                        payload_arms.push_str(&inner);
                    }
                }
            }
            format!(
                "if let ::std::option::Option::Some(__s) = __value.as_str() {{\n\
                 match __s {{\n{unit_arms}\
                 __other => return ::std::result::Result::Err(::serde::Error::msg(\
                 format!(\"unknown {name} variant `{{__other}}`\"))),\n}}\n}}\n\
                 let __obj = __value.as_object().ok_or_else(|| \
                 ::serde::Error::msg(\"expected object for enum {name}\"))?;\n\
                 let (__tag, __payload) = __obj.iter().next().ok_or_else(|| \
                 ::serde::Error::msg(\"empty object for enum {name}\"))?;\n\
                 match __tag.as_str() {{\n{payload_arms}\
                 __other => ::std::result::Result::Err(::serde::Error::msg(\
                 format!(\"unknown {name} variant `{{__other}}`\"))),\n}}"
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl{impl_generics} ::serde::Deserialize for {name}{ty_generics} {{\n\
         fn deserialize_value(__value: &::serde::Value) \
         -> ::std::result::Result<Self, ::serde::Error> {{\n{body}\n}}\n}}\n"
    )
}
