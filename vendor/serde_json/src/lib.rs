//! Offline, minimal drop-in replacement for the subset of `serde_json`
//! that GridMind-RS uses: `Value`, `json!`, `to_value`/`from_value`,
//! `to_string`/`to_string_pretty`/`to_vec`, and `from_str`/`from_slice`.
//!
//! The value tree itself lives in the vendored `serde` stub (both
//! crates need it; the real pair shares it through `Serializer`
//! machinery we do not replicate). This crate adds JSON text I/O and
//! the `json!` constructor macro.

pub use serde::{Error, Map, Number, Value};

use serde::{Deserialize, Serialize};

/// `serde_json::value` module mirror.
pub mod value {
    pub use super::{from_value, to_value};
    pub use serde::{Map, Number, Value};
}

/// `serde_json::error` module mirror.
pub mod error {
    pub use serde::Error;
    /// Result alias matching `serde_json::Result`.
    pub type Result<T> = std::result::Result<T, Error>;
}

pub use error::Result;

/// Lower any `Serialize` type to a `Value`.
pub fn to_value<T: Serialize>(value: T) -> Result<Value> {
    Ok(value.serialize_value())
}

/// Lift a `Deserialize` type out of a `Value`.
pub fn from_value<T: Deserialize>(value: Value) -> Result<T> {
    T::deserialize_value(&value)
}

/// Serialize to a compact JSON string.
pub fn to_string<T: Serialize>(value: &T) -> Result<String> {
    Ok(value.serialize_value().to_string())
}

/// Serialize to an indented JSON string (2-space indent, like serde_json).
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_pretty(&value.serialize_value(), &mut out, 0);
    Ok(out)
}

/// Serialize to compact JSON bytes.
pub fn to_vec<T: Serialize>(value: &T) -> Result<Vec<u8>> {
    to_string(value).map(String::into_bytes)
}

/// Parse a JSON document and lift `T` out of it.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let value = parse_value(s)?;
    T::deserialize_value(&value)
}

/// Parse JSON bytes (must be UTF-8) and lift `T` out of them.
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error::msg(format!("invalid UTF-8: {e}")))?;
    from_str(s)
}

// ---------------------------------------------------------------------
// Pretty printer
// ---------------------------------------------------------------------

fn write_pretty(v: &Value, out: &mut String, depth: usize) {
    use std::fmt::Write as _;
    let pad = "  ".repeat(depth + 1);
    let close_pad = "  ".repeat(depth);
    match v {
        Value::Array(a) if !a.is_empty() => {
            out.push_str("[\n");
            for (i, item) in a.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&pad);
                write_pretty(item, out, depth + 1);
            }
            out.push('\n');
            out.push_str(&close_pad);
            out.push(']');
        }
        Value::Object(m) if !m.is_empty() => {
            out.push_str("{\n");
            for (i, (k, item)) in m.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&pad);
                let _ = write!(out, "{}: ", Value::String(k.clone()));
                write_pretty(item, out, depth + 1);
            }
            out.push('\n');
            out.push_str(&close_pad);
            out.push('}');
        }
        other => {
            let _ = write!(out, "{other}");
        }
    }
}

// ---------------------------------------------------------------------
// Parser: a small recursive-descent JSON reader.
// ---------------------------------------------------------------------

/// Parse a complete JSON document into a [`Value`].
pub fn parse_value(s: &str) -> Result<Value> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::msg(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::msg(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(Error::msg(format!(
                "unexpected character `{}` at byte {}",
                c as char, self.pos
            ))),
            None => Err(Error::msg("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(out));
        }
        loop {
            out.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(out));
                }
                _ => {
                    return Err(Error::msg(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut out = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(out));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.value()?;
            out.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(out));
                }
                _ => {
                    return Err(Error::msg(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| Error::msg(format!("invalid UTF-8 in string: {e}")))?;
                out.push_str(chunk);
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::msg("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let cp = self.hex4()?;
                            // Surrogate pairs for astral-plane characters.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(Error::msg("invalid low surrogate"));
                                }
                                let c = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(c)
                            } else {
                                char::from_u32(cp)
                            };
                            out.push(c.ok_or_else(|| Error::msg("invalid unicode escape"))?);
                        }
                        other => {
                            return Err(Error::msg(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                Some(c) => return Err(Error::msg(format!("control character {c:#x} in string"))),
                None => return Err(Error::msg("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32> {
        let hex = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| Error::msg("truncated \\u escape"))?;
        self.pos += 4;
        let s = std::str::from_utf8(hex).map_err(|_| Error::msg("invalid \\u escape"))?;
        u32::from_str_radix(s, 16).map_err(|_| Error::msg("invalid \\u escape"))
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::msg("invalid number"))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::Number(Number::from(u)));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Number(Number::from(i)));
            }
        }
        text.parse::<f64>()
            .map(|f| Value::Number(Number::from(f)))
            .map_err(|e| Error::msg(format!("invalid number `{text}`: {e}")))
    }
}

// ---------------------------------------------------------------------
// json! macro — a tt-muncher in the style of the real serde_json macro.
// ---------------------------------------------------------------------

/// Build a [`Value`] from JSON-like syntax with expression interpolation.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    (true) => { $crate::Value::Bool(true) };
    (false) => { $crate::Value::Bool(false) };
    ([ $($tt:tt)* ]) => { $crate::Value::Array($crate::json_internal_array!([] $($tt)*)) };
    ({ $($tt:tt)* }) => {{
        #[allow(unused_mut)]
        let mut __m = $crate::Map::new();
        $crate::json_internal_object!(__m () $($tt)*);
        $crate::Value::Object(__m)
    }};
    ($other:expr) => {
        match $crate::to_value(&$other) {
            ::std::result::Result::Ok(__v) => __v,
            ::std::result::Result::Err(_) => $crate::Value::Null,
        }
    };
}

/// Internal: accumulate array elements. `[done] rest...`
#[doc(hidden)]
#[macro_export]
macro_rules! json_internal_array {
    // End of input: emit the vec.
    ([$($done:expr),*]) => { vec![$($done),*] };
    ([$($done:expr),*] ,) => { vec![$($done),*] };
    // JSON-literal element forms, with and without a following comma.
    ([$($done:expr),*] null $(, $($rest:tt)*)?) => {
        $crate::json_internal_array!([$($done,)* $crate::json!(null)] $($($rest)*)?)
    };
    ([$($done:expr),*] true $(, $($rest:tt)*)?) => {
        $crate::json_internal_array!([$($done,)* $crate::json!(true)] $($($rest)*)?)
    };
    ([$($done:expr),*] false $(, $($rest:tt)*)?) => {
        $crate::json_internal_array!([$($done,)* $crate::json!(false)] $($($rest)*)?)
    };
    ([$($done:expr),*] [$($inner:tt)*] $(, $($rest:tt)*)?) => {
        $crate::json_internal_array!([$($done,)* $crate::json!([$($inner)*])] $($($rest)*)?)
    };
    ([$($done:expr),*] {$($inner:tt)*} $(, $($rest:tt)*)?) => {
        $crate::json_internal_array!([$($done,)* $crate::json!({$($inner)*})] $($($rest)*)?)
    };
    // Plain expression element (stops at a top-level comma).
    ([$($done:expr),*] $e:expr $(, $($rest:tt)*)?) => {
        $crate::json_internal_array!([$($done,)* $crate::json!($e)] $($($rest)*)?)
    };
}

/// Internal: accumulate object entries. `map (key-tokens) rest...`
#[doc(hidden)]
#[macro_export]
macro_rules! json_internal_object {
    // Done.
    ($m:ident ()) => {};
    ($m:ident () ,) => {};
    // Key is complete (a literal or parenthesized expression) and a
    // colon follows: dispatch on the value shape.
    ($m:ident ($key:expr) : null $(, $($rest:tt)*)?) => {
        $m.insert(::std::string::String::from($key), $crate::json!(null));
        $crate::json_internal_object!($m () $($($rest)*)?);
    };
    ($m:ident ($key:expr) : true $(, $($rest:tt)*)?) => {
        $m.insert(::std::string::String::from($key), $crate::json!(true));
        $crate::json_internal_object!($m () $($($rest)*)?);
    };
    ($m:ident ($key:expr) : false $(, $($rest:tt)*)?) => {
        $m.insert(::std::string::String::from($key), $crate::json!(false));
        $crate::json_internal_object!($m () $($($rest)*)?);
    };
    ($m:ident ($key:expr) : [$($inner:tt)*] $(, $($rest:tt)*)?) => {
        $m.insert(::std::string::String::from($key), $crate::json!([$($inner)*]));
        $crate::json_internal_object!($m () $($($rest)*)?);
    };
    ($m:ident ($key:expr) : {$($inner:tt)*} $(, $($rest:tt)*)?) => {
        $m.insert(::std::string::String::from($key), $crate::json!({$($inner)*}));
        $crate::json_internal_object!($m () $($($rest)*)?);
    };
    ($m:ident ($key:expr) : $value:expr $(, $($rest:tt)*)?) => {
        $m.insert(::std::string::String::from($key), $crate::json!($value));
        $crate::json_internal_object!($m () $($($rest)*)?);
    };
    // Munch key tokens one tt at a time until the colon.
    ($m:ident () $key:literal : $($rest:tt)*) => {
        $crate::json_internal_object!($m ($key) : $($rest)*);
    };
    ($m:ident () ($key:expr) : $($rest:tt)*) => {
        $crate::json_internal_object!($m ($key) : $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_nested() {
        let v = json!({
            "name": "case14",
            "n": 3,
            "x": 1.5,
            "flags": [true, false, null],
            "nested": {"a": [1, 2, {"b": "c"}]},
            "interp": 2 + 3,
        });
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, v);
        assert_eq!(v["n"], 3u64);
        assert_eq!(v["interp"], 5i64);
        assert_eq!(v["nested"]["a"][2]["b"], "c");
    }

    #[test]
    fn escapes_and_unicode() {
        let v = json!({"s": "line\nquote\"backslash\\tab\tés 🎉"});
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, v);
        let surrogate: Value = from_str(r#""🎉""#).unwrap();
        assert_eq!(surrogate, "🎉");
    }

    #[test]
    fn numbers() {
        assert_eq!(from_str::<Value>("42").unwrap().as_u64(), Some(42));
        assert_eq!(from_str::<Value>("-7").unwrap().as_i64(), Some(-7));
        assert_eq!(from_str::<Value>("2.0").unwrap().as_f64(), Some(2.0));
        assert_eq!(from_str::<Value>("1e3").unwrap().as_f64(), Some(1000.0));
        assert_eq!(to_string(&json!(2.0)).unwrap(), "2.0");
        assert_eq!(to_string(&json!(2u64)).unwrap(), "2");
    }

    #[test]
    fn pretty_is_parseable() {
        let v = json!({"a": [1, 2], "b": {"c": null}});
        let text = to_string_pretty(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn rejects_malformed() {
        assert!(from_str::<Value>("{").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("nul").is_err());
        assert!(from_str::<Value>("1 2").is_err());
    }
}
