//! Offline, minimal drop-in for the `proptest` subset GridMind-RS
//! uses. Strategies sample deterministically from a seeded generator
//! (no shrinking — a failing case prints its inputs instead), which
//! keeps property tests reproducible across CI runs.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::fmt;
use std::ops::{Range, RangeInclusive};

/// Test-runner configuration (`ProptestConfig::with_cases(n)`).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A failed property case (carries the rendered assertion message).
#[derive(Debug)]
pub struct TestCaseError {
    /// Rendered failure reason.
    pub message: String,
}

impl TestCaseError {
    /// Build a failure from a rendered message.
    pub fn fail<S: Into<String>>(message: S) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// Result type each property body produces.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Deterministic per-test random source.
pub struct TestRng {
    inner: SmallRng,
}

impl TestRng {
    /// Seeded from the test name so each property gets a stable but
    /// distinct stream.
    pub fn for_test(name: &str, case: u32) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng {
            inner: SmallRng::seed_from_u64(h ^ (u64::from(case) << 32)),
        }
    }
}

/// A source of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value: fmt::Debug + Clone;
    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> MapStrategy<Self, F>
    where
        Self: Sized,
        O: fmt::Debug + Clone,
        F: Fn(Self::Value) -> O,
    {
        MapStrategy { inner: self, f }
    }

    /// Retry until `f` accepts the value (bounded; panics if the
    /// filter rejects everything).
    fn prop_filter<F>(self, whence: &'static str, f: F) -> FilterStrategy<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        FilterStrategy {
            inner: self,
            whence,
            f,
        }
    }
}

/// Output of [`Strategy::prop_map`].
pub struct MapStrategy<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for MapStrategy<S, F>
where
    S: Strategy,
    O: fmt::Debug + Clone,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Output of [`Strategy::prop_filter`].
pub struct FilterStrategy<S, F> {
    inner: S,
    whence: &'static str,
    f: F,
}

impl<S, F> Strategy for FilterStrategy<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.sample(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter rejected 1000 candidates: {}", self.whence);
    }
}

macro_rules! range_strategy {
    ($($t:ty)*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.inner.random_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.inner.random_range(self.clone())
            }
        }
    )*};
}
range_strategy!(i8 i16 i32 i64 isize u8 u16 u32 u64 usize f64 f32);

/// String literals act as regex-shaped string strategies in real
/// proptest. The offline stub supports the subset the workspace uses:
/// `.` (any printable char, occasionally exotic unicode) with a
/// `{m,n}` repetition, e.g. `".{0,200}"`.
impl Strategy for &str {
    type Value = String;
    fn sample(&self, rng: &mut TestRng) -> String {
        let (min, max) = parse_dot_repeat(self).unwrap_or_else(|| {
            panic!(
                "unsupported string strategy {self:?}: the offline proptest stub \
                 only implements \".{{m,n}}\" patterns"
            )
        });
        let n = rng.inner.random_range(min..=max);
        (0..n)
            .map(|_| match rng.inner.random_range(0u32..20) {
                // Mostly ASCII, with whitespace and multibyte chars mixed
                // in to stress parsers.
                0 => ' ',
                1 => '\t',
                2 => '\u{e9}',   // é
                3 => '\u{4e2d}', // 中
                4..=7 => rng.inner.random_range(b'0'..=b'9') as char,
                _ => rng.inner.random_range(b'a'..=b'z') as char,
            })
            .collect()
    }
}

/// Parse `".{m,n}"` into `(m, n)`.
fn parse_dot_repeat(pattern: &str) -> Option<(usize, usize)> {
    let body = pattern.strip_prefix(".{")?.strip_suffix('}')?;
    let (m, n) = body.split_once(',')?;
    Some((m.trim().parse().ok()?, n.trim().parse().ok()?))
}

/// A constant is a degenerate strategy (proptest's `Just`).
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: fmt::Debug + Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! tuple_strategy {
    ($(($($t:ident $idx:tt),+))*) => {$(
        impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A 0)
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
    (A 0, B 1, C 2, D 3, E 4, F 5)
}

/// Types with a canonical "any value" strategy (`any::<T>()`).
pub trait Arbitrary: fmt::Debug + Clone + Sized {
    /// The strategy type `any` returns.
    type Strategy: Strategy<Value = Self>;
    /// Build the canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// Canonical strategy for a type.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// `any::<bool>()` support.
#[derive(Clone, Debug)]
pub struct AnyBool;

impl Strategy for AnyBool {
    type Value = bool;
    fn sample(&self, rng: &mut TestRng) -> bool {
        rng.inner.random()
    }
}

impl Arbitrary for bool {
    type Strategy = AnyBool;
    fn arbitrary() -> AnyBool {
        AnyBool
    }
}

macro_rules! arbitrary_int {
    ($($t:ty => $lo:expr, $hi:expr;)*) => {$(
        impl Arbitrary for $t {
            type Strategy = RangeInclusive<$t>;
            fn arbitrary() -> Self::Strategy {
                $lo..=$hi
            }
        }
    )*};
}
arbitrary_int! {
    i32 => i32::MIN, i32::MAX;
    u32 => u32::MIN, u32::MAX;
    i64 => i64::MIN, i64::MAX;
    u64 => u64::MIN, u64::MAX;
    usize => usize::MIN, usize::MAX;
}

/// Strategy modules mirroring `proptest::prop::*` paths.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::Range;

    /// `prop::collection::vec(element, size_range)`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    /// Output of [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let n = rng.inner.random_range(self.size.clone());
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Mirror of `proptest::sample`.
pub mod sample {
    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::fmt;

    /// Uniformly select one of the given values.
    pub fn select<T: fmt::Debug + Clone>(values: Vec<T>) -> Select<T> {
        assert!(!values.is_empty(), "select() needs at least one value");
        Select { values }
    }

    /// Output of [`select`].
    pub struct Select<T> {
        values: Vec<T>,
    }

    impl<T: fmt::Debug + Clone> Strategy for Select<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let i = rng.inner.random_range(0..self.values.len());
            self.values[i].clone()
        }
    }
}

/// Mirror of `proptest::num`.
pub mod num {
    /// `prop::num::f64::ANY` — the full f64 value space, including
    /// infinities and NaN (sampled with boosted probability for the
    /// special values, as in real proptest's special-value bias).
    pub mod f64 {
        use crate::{Strategy, TestRng};
        use rand::Rng;

        /// Marker strategy for any `f64`.
        #[derive(Clone, Debug)]
        pub struct Any;

        /// The full-space strategy value.
        pub const ANY: Any = Any;

        impl Strategy for Any {
            type Value = f64;
            fn sample(&self, rng: &mut TestRng) -> f64 {
                match rng.inner.random_range(0u32..16) {
                    0 => f64::NAN,
                    1 => f64::INFINITY,
                    2 => f64::NEG_INFINITY,
                    3 => 0.0,
                    4 => -0.0,
                    5 => f64::MIN_POSITIVE,
                    6 => f64::MAX,
                    _ => {
                        // Random bit pattern filtered to finite values.
                        loop {
                            let v = f64::from_bits(rng.inner.random::<u64>());
                            if v.is_finite() {
                                return v;
                            }
                        }
                    }
                }
            }
        }
    }
}

/// The `proptest::prelude` glob import surface.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, Just,
        ProptestConfig, Strategy, TestCaseError, TestCaseResult,
    };

    /// `prop::…` module paths (`prop::collection::vec`, …).
    pub mod prop {
        pub use crate::{collection, num, sample};
    }
}

#[doc(hidden)]
pub mod __rt {
    pub use super::{ProptestConfig, Strategy, TestCaseError, TestRng};

    /// Drive one property: sample, run, and panic with the inputs
    /// rendered on failure (no shrinking in the offline stub).
    pub fn run_property<Args: std::fmt::Debug, S, F>(
        name: &str,
        config: &ProptestConfig,
        strategy: &S,
        body: F,
    ) where
        S: Strategy<Value = Args>,
        F: Fn(Args) -> Result<(), TestCaseError>,
    {
        for case in 0..config.cases {
            let mut rng = TestRng::for_test(name, case);
            let args = strategy.sample(&mut rng);
            let rendered = format!("{args:?}");
            if let Err(e) = body(args) {
                panic!(
                    "property `{name}` failed at case {case}/{}\n  inputs: {rendered}\n  {e}",
                    config.cases
                );
            }
        }
    }
}

/// Define property tests: `proptest! { #[test] fn p(x in 0..10) {...} }`.
#[macro_export]
macro_rules! proptest {
    (@cfg ($cfg:expr)) => {};
    (@cfg ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            let __strategy = ($($strategy,)+);
            $crate::__rt::run_property(
                stringify!($name),
                &__config,
                &__strategy,
                |($($arg,)+)| {
                    $body
                    ::std::result::Result::Ok(())
                },
            );
        }
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Assert inside a property; failure reports the sampled inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                format!("assertion failed: {}: {}", stringify!($cond), format!($($fmt)*)),
            ));
        }
    };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (__a, __b) = (&$a, &$b);
        if !(__a == __b) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n  right: {:?}",
                stringify!($a), stringify!($b), __a, __b,
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (__a, __b) = (&$a, &$b);
        if !(__a == __b) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {}: {}\n  left: {:?}\n  right: {:?}",
                stringify!($a), stringify!($b), format!($($fmt)*), __a, __b,
            )));
        }
    }};
}

/// Inequality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (__a, __b) = (&$a, &$b);
        if __a == __b {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($a),
                stringify!($b),
                __a,
            )));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(
            n in 2usize..24,
            x in -2.0f64..2.0,
            pair in (0u32..10, 5i32..=9),
        ) {
            prop_assert!((2..24).contains(&n));
            prop_assert!((-2.0..2.0).contains(&x));
            prop_assert!(pair.0 < 10);
            prop_assert!((5..=9).contains(&pair.1));
        }

        #[test]
        fn vec_and_select(
            v in prop::collection::vec((0usize..32, -1.0f64..1.0), 0..40),
            word in prop::sample::select(vec!["a", "b", "c"]),
            flag in any::<bool>(),
        ) {
            prop_assert!(v.len() < 40);
            prop_assert!(["a", "b", "c"].contains(&word));
            let _ = flag;
        }
    }

    #[test]
    fn f64_any_hits_special_values() {
        use crate::Strategy;
        let mut rng = crate::TestRng::for_test("specials", 0);
        let mut saw_nan = false;
        let mut saw_finite = false;
        for _ in 0..200 {
            let v = crate::num::f64::ANY.sample(&mut rng);
            saw_nan |= v.is_nan();
            saw_finite |= v.is_finite();
        }
        assert!(saw_nan && saw_finite);
    }

    #[test]
    #[should_panic(expected = "property `always_fails` failed")]
    fn failure_reports_inputs() {
        proptest! {
            #[test]
            fn always_fails(x in 0u32..10) {
                prop_assert!(x > 100, "x was {x}");
            }
        }
        always_fails();
    }
}
