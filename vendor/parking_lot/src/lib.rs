//! Offline drop-in for the `parking_lot` subset GridMind-RS uses:
//! `Mutex` and `RwLock` with non-poisoning, `Result`-free guards.
//! Backed by `std::sync` primitives; a poisoned std lock (a panic while
//! holding the guard) degrades to taking the inner value anyway, which
//! matches parking_lot's no-poisoning semantics.

use std::sync::{self, TryLockError};

/// A mutual-exclusion lock whose `lock()` returns the guard directly.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// Guard type alias; derefs to `T`.
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Wrap a value.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consume the lock, returning the value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Try to acquire without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

/// A reader-writer lock whose `read()`/`write()` return guards directly.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// Shared-read guard alias.
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Exclusive-write guard alias.
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Wrap a value.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Acquire the exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_and_rwlock_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);

        let rw = RwLock::new(vec![1, 2]);
        assert_eq!(rw.read().len(), 2);
        rw.write().push(3);
        assert_eq!(rw.read().len(), 3);
    }
}
