//! Offline, minimal drop-in for the `criterion` subset GridMind-RS
//! benches use. It actually times the closures (median of a small
//! number of batches after warmup) and prints one line per benchmark,
//! so `cargo bench` still yields usable relative numbers offline —
//! just without criterion's statistics, plots, or history.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Configure (builder-style) how many samples each bench records.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 10,
        }
    }

    /// Run a standalone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(name, self.sample_size, f);
        self
    }
}

/// A named group; benches within it share configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Number of samples per bench in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmark a closure.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id());
        run_bench(&label, self.sample_size, f);
        self
    }

    /// Benchmark a closure against a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id());
        run_bench(&label, self.sample_size, |b| f(b, input));
        self
    }

    /// Finish the group (printing is incremental; this is a no-op).
    pub fn finish(self) {}
}

/// Identifier for one benchmark within a group.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }

    /// Parameter-only id.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Anything usable as a benchmark id (string or [`BenchmarkId`]).
pub trait IntoBenchmarkId {
    /// Render the id.
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// Passed to the bench closure; `iter` times the workload.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Time `routine`, recording `sample_size` samples after one warmup.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine()); // warmup + forces compilation of the path
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, mut f: F) {
    let mut b = Bencher {
        samples: Vec::new(),
        sample_size,
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{label:<40} (no samples)");
        return;
    }
    b.samples.sort();
    let median = b.samples[b.samples.len() / 2];
    let min = b.samples[0];
    let max = b.samples[b.samples.len() - 1];
    println!(
        "{label:<40} median {:>12?}  (min {:?}, max {:?}, n={})",
        median,
        min,
        max,
        b.samples.len()
    );
}

/// Declare a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emit `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
