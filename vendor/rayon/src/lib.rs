//! Offline drop-in for the `rayon` subset GridMind-RS uses:
//! `slice.par_iter().map(f).collect()`. Unlike most stubs this one is
//! genuinely parallel — it fans contiguous chunks out over scoped
//! threads (one per available core) and reassembles results in order,
//! so the N-1 contingency sweep keeps its speedup.

/// Everything a `use rayon::prelude::*;` caller needs.
pub mod prelude {
    pub use crate::IntoParallelRefIterator;
}

/// `par_iter()` entry point for slices (and anything derefing to one).
pub trait IntoParallelRefIterator<'data> {
    /// Element type yielded by reference.
    type Item: 'data;
    /// Borrow a parallel iterator over the data.
    fn par_iter(&'data self) -> ParIter<'data, Self::Item>;
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
    type Item = T;
    fn par_iter(&'data self) -> ParIter<'data, T> {
        ParIter { items: self }
    }
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
    type Item = T;
    fn par_iter(&'data self) -> ParIter<'data, T> {
        ParIter { items: self }
    }
}

/// Borrowed parallel iterator.
pub struct ParIter<'a, T> {
    items: &'a [T],
}

impl<'a, T: Sync> ParIter<'a, T> {
    /// Map each element through `f` in parallel.
    pub fn map<R, F>(self, f: F) -> ParMap<'a, T, F>
    where
        F: Fn(&'a T) -> R + Sync,
        R: Send,
    {
        ParMap {
            items: self.items,
            f,
        }
    }

    /// Map each element through `f` in parallel, handing every worker a
    /// mutable state created by `init` — rayon's `map_init`. `init` runs
    /// once per worker thread (here: once per contiguous chunk), so the
    /// state amortizes per-thread setup such as solver caches across the
    /// chunk's elements.
    pub fn map_init<S, R, INIT, F>(self, init: INIT, f: F) -> ParMapInit<'a, T, INIT, F>
    where
        INIT: Fn() -> S + Sync,
        F: Fn(&mut S, &'a T) -> R + Sync,
        R: Send,
    {
        ParMapInit {
            items: self.items,
            init,
            f,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the iterator is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

/// A mapped parallel iterator, ready to collect.
pub struct ParMap<'a, T, F> {
    items: &'a [T],
    f: F,
}

impl<'a, T, F, R> ParMap<'a, T, F>
where
    T: Sync,
    F: Fn(&'a T) -> R + Sync,
    R: Send,
{
    /// Run the map over scoped worker threads, preserving input order.
    pub fn collect<C: FromIterator<R>>(self) -> C {
        run_ordered(self.items, &self.f).into_iter().collect()
    }
}

/// A mapped parallel iterator with per-worker state, ready to collect.
pub struct ParMapInit<'a, T, INIT, F> {
    items: &'a [T],
    init: INIT,
    f: F,
}

impl<'a, T, S, INIT, F, R> ParMapInit<'a, T, INIT, F>
where
    T: Sync,
    INIT: Fn() -> S + Sync,
    F: Fn(&mut S, &'a T) -> R + Sync,
    R: Send,
{
    /// Run the map over scoped worker threads, preserving input order.
    /// One `init` state per worker chunk.
    pub fn collect<C: FromIterator<R>>(self) -> C {
        run_ordered_init(self.items, &self.init, &self.f)
            .into_iter()
            .collect()
    }
}

fn run_ordered_init<'a, T, S, R, INIT, F>(items: &'a [T], init: &INIT, f: &F) -> Vec<R>
where
    T: Sync,
    INIT: Fn() -> S + Sync,
    F: Fn(&mut S, &'a T) -> R + Sync,
    R: Send,
{
    let n = items.len();
    let workers = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
        .min(n.max(1));
    if workers <= 1 || n < 2 {
        let mut state = init();
        return items.iter().map(|item| f(&mut state, item)).collect();
    }
    let chunk = n.div_ceil(workers);
    let mut out: Vec<R> = Vec::with_capacity(n);
    std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(chunk)
            .map(|part| {
                scope.spawn(move || {
                    let mut state = init();
                    part.iter()
                        .map(|item| f(&mut state, item))
                        .collect::<Vec<R>>()
                })
            })
            .collect();
        for h in handles {
            match h.join() {
                Ok(part) => out.extend(part),
                // A panicking worker panics the caller, like rayon.
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });
    out
}

fn run_ordered<'a, T, R, F>(items: &'a [T], f: &F) -> Vec<R>
where
    T: Sync,
    F: Fn(&'a T) -> R + Sync,
    R: Send,
{
    let n = items.len();
    let workers = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
        .min(n.max(1));
    if workers <= 1 || n < 2 {
        return items.iter().map(f).collect();
    }
    let chunk = n.div_ceil(workers);
    let mut out: Vec<R> = Vec::with_capacity(n);
    std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(chunk)
            .map(|part| scope.spawn(move || part.iter().map(f).collect::<Vec<R>>()))
            .collect();
        for h in handles {
            match h.join() {
                Ok(part) => out.extend(part),
                // A panicking worker panics the caller, like rayon.
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });
    out
}

/// Run two closures, potentially in parallel (sequential here: the
/// workspace only uses `join` for API parity in tests).
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    (a(), b())
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ordered_and_complete() {
        let data: Vec<u64> = (0..1000).collect();
        let sq: Vec<u64> = data.par_iter().map(|x| x * x).collect();
        assert_eq!(sq.len(), 1000);
        for (i, v) in sq.iter().enumerate() {
            assert_eq!(*v, (i as u64) * (i as u64));
        }
    }

    #[test]
    fn map_init_ordered_with_bounded_states() {
        let data: Vec<u64> = (0..1000).collect();
        let states = std::sync::atomic::AtomicUsize::new(0);
        let doubled: Vec<u64> = data
            .par_iter()
            .map_init(
                || {
                    states.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    Vec::<u64>::new()
                },
                |scratch, x| {
                    scratch.push(*x); // state is genuinely mutable
                    x * 2
                },
            )
            .collect();
        for (i, v) in doubled.iter().enumerate() {
            assert_eq!(*v, 2 * i as u64);
        }
        let inits = states.load(std::sync::atomic::Ordering::Relaxed);
        let cores = std::thread::available_parallelism().map_or(1, |c| c.get());
        assert!(
            inits >= 1 && inits <= cores,
            "{inits} states for {cores} cores"
        );
    }

    #[test]
    fn empty_and_single() {
        let empty: Vec<u32> = Vec::new();
        let out: Vec<u32> = empty.par_iter().map(|x| x + 1).collect();
        assert!(out.is_empty());
        let one = [41u32];
        let out: Vec<u32> = one.par_iter().map(|x| x + 1).collect();
        assert_eq!(out, vec![42]);
    }
}
